#include "vm/interp.hpp"

#include <algorithm>
#include <deque>

namespace sde::vm {

namespace {

// Applies a 64-bit ALU operation through the expression builder.
expr::Ref applyAlu(expr::Context& ctx, Op op, expr::Ref a, expr::Ref b) {
  switch (op) {
    case Op::kAdd:
      return ctx.add(a, b);
    case Op::kSub:
      return ctx.sub(a, b);
    case Op::kMul:
      return ctx.mul(a, b);
    case Op::kUDiv:
      return ctx.udiv(a, b);
    case Op::kURem:
      return ctx.urem(a, b);
    case Op::kSDiv:
      return ctx.sdiv(a, b);
    case Op::kSRem:
      return ctx.srem(a, b);
    case Op::kAnd:
      return ctx.bvAnd(a, b);
    case Op::kOr:
      return ctx.bvOr(a, b);
    case Op::kXor:
      return ctx.bvXor(a, b);
    case Op::kShl:
      return ctx.shl(a, b);
    case Op::kLShr:
      return ctx.lshr(a, b);
    case Op::kAShr:
      return ctx.ashr(a, b);
    case Op::kEq:
      return ctx.zext(ctx.eq(a, b), 64);
    case Op::kNe:
      return ctx.zext(ctx.ne(a, b), 64);
    case Op::kUlt:
      return ctx.zext(ctx.ult(a, b), 64);
    case Op::kUle:
      return ctx.zext(ctx.ule(a, b), 64);
    case Op::kSlt:
      return ctx.zext(ctx.slt(a, b), 64);
    case Op::kSle:
      return ctx.zext(ctx.sle(a, b), 64);
    default:
      SDE_UNREACHABLE("applyAlu: not an ALU op");
  }
}

}  // namespace

expr::Ref Interpreter::reg(ExecutionState& state, std::uint8_t index) const {
  SDE_ASSERT(index < kNumRegisters, "register out of range");
  expr::Ref v = state.regs_[index];
  return v == nullptr ? ctx_.constant(0, 64) : v;
}

void Interpreter::setReg(ExecutionState& state, std::uint8_t index,
                         expr::Ref value) {
  SDE_ASSERT(index < kNumRegisters, "register out of range");
  SDE_ASSERT(value->width() == 64, "registers hold 64-bit words");
  state.regs_[index] = value;
}

void Interpreter::kill(ExecutionState& state, std::string_view why) {
  state.status = StateStatus::kKilled;
  state.failureMessage = std::string(why);
  stats_.bump("vm.killed");
}

std::uint64_t Interpreter::concretize(ExecutionState& state,
                                      expr::Ref value) {
  if (value->isConstant()) return value->value();
  stats_.bump("vm.concretizations");
  const auto v = solver_.getValue(state.constraints, value);
  SDE_ASSERT(v.has_value(),
             "concretize on an infeasible state (engine must not schedule "
             "infeasible states)");
  // Pin the state to the chosen value so later paths stay consistent.
  state.constraints.add(ctx_.eq(value, ctx_.constant(*v, 64)));
  return *v;
}

void Interpreter::runEvent(ExecutionState& state, Entry entry,
                           std::span<const expr::Ref> args, EffectSink& sink) {
  SDE_ASSERT(state.status == StateStatus::kIdle, "runEvent on non-idle state");
  const auto entryPc = state.program().entry(entry);
  SDE_ASSERT(entryPc.has_value(), "program lacks the dispatched entry");
  SDE_ASSERT(args.size() <= 3, "at most three event arguments");

  state.status = StateStatus::kRunning;
  state.pc = *entryPc;
  state.callStack.clear();
  for (std::size_t i = 0; i < 3; ++i)
    setReg(state, static_cast<std::uint8_t>(i),
           i < args.size() ? args[i] : ctx_.constant(0, 64));

  std::deque<ExecutionState*> worklist{&state};
  while (!worklist.empty()) {
    ExecutionState* current = worklist.front();
    worklist.pop_front();
    std::uint64_t steps = 0;
    std::vector<ExecutionState*> forked;
    while (current->status == StateStatus::kRunning) {
      if (++steps > config_.maxStepsPerEvent) {
        kill(*current, "per-event step limit exceeded");
        break;
      }
      if (!step(*current, sink, forked)) break;
    }
    if (current->status == StateStatus::kRunning)
      current->status = StateStatus::kIdle;
    // Forked siblings execute after the current state completes, in
    // creation order (deterministic breadth-first exploration).
    for (ExecutionState* child : forked) worklist.push_back(child);
  }
}

bool Interpreter::step(ExecutionState& state, EffectSink& sink,
                       std::vector<ExecutionState*>& worklist) {
  const Instr& ins = state.program().at(state.pc);
  ++state.executedInstructions;
  stats_.bump("vm.instructions");
  std::size_t nextPc = state.pc + 1;

  if (isBinaryAlu(ins.op)) {
    setReg(state, ins.a,
           applyAlu(ctx_, ins.op, reg(state, ins.b), reg(state, ins.c)));
    state.pc = nextPc;
    return true;
  }

  switch (ins.op) {
    default:
      SDE_UNREACHABLE("ALU ops handled above");
    case Op::kNop:
      break;
    case Op::kConst:
      setReg(state, ins.a,
             ctx_.constant(static_cast<std::uint64_t>(ins.imm), 64));
      break;
    case Op::kMov:
      setReg(state, ins.a, reg(state, ins.b));
      break;
    case Op::kNot:
      setReg(state, ins.a, ctx_.bvNot(reg(state, ins.b)));
      break;
    case Op::kJmp:
      nextPc = static_cast<std::size_t>(ins.imm);
      break;
    case Op::kBr: {
      const expr::Ref value = reg(state, ins.a);
      const expr::Ref cond = ctx_.boolCast(value);
      const auto takenPc = static_cast<std::size_t>(ins.imm);
      const auto fallPc = static_cast<std::size_t>(ins.imm2);
      if (cond->isConstant()) {
        nextPc = cond->isTrue() ? takenPc : fallPc;
        break;
      }
      switch (solver_.classify(state.constraints, cond)) {
        case solver::Validity::kTrue:
          nextPc = takenPc;
          break;
        case solver::Validity::kFalse:
          nextPc = fallPc;
          break;
        case solver::Validity::kUnknown: {
          stats_.bump("vm.forks");
          ExecutionState& child = sink.forkState(state);
          // Parent takes the true edge, child the false edge.
          state.constraints.add(cond);
          child.constraints.add(ctx_.logicalNot(cond));
          child.pc = fallPc;
          SDE_ASSERT(child.status == StateStatus::kRunning,
                     "fork of a running state must be running");
          worklist.push_back(&child);
          nextPc = takenPc;
          break;
        }
      }
      break;
    }
    case Op::kCall:
      state.callStack.push_back(nextPc);
      nextPc = static_cast<std::size_t>(ins.imm);
      break;
    case Op::kRet:
      if (state.callStack.empty()) {
        // Returning from the handler's entry frame ends the event.
        state.status = StateStatus::kIdle;
        return false;
      }
      nextPc = state.callStack.back();
      state.callStack.pop_back();
      break;
    case Op::kHalt:
      state.status = StateStatus::kIdle;
      return false;
    case Op::kFail:
      state.status = StateStatus::kFailed;
      state.failureMessage = std::string(state.program().string(ins.str));
      stats_.bump("vm.failures");
      return false;
    case Op::kAlloc: {
      const std::uint64_t cells = concretize(state, reg(state, ins.b));
      const std::uint64_t id = state.space.alloc(ctx_, cells);
      setReg(state, ins.a, ctx_.constant(id, 64));
      break;
    }
    case Op::kLoad: {
      const std::uint64_t obj = concretize(state, reg(state, ins.b));
      const std::uint64_t index = concretize(state, reg(state, ins.c));
      if (!state.space.hasObject(obj) ||
          index >= state.space.objectSize(obj)) {
        kill(state, "out-of-bounds load");
        return false;
      }
      setReg(state, ins.a, state.space.load(obj, index));
      break;
    }
    case Op::kStore: {
      const std::uint64_t obj = concretize(state, reg(state, ins.b));
      const std::uint64_t index = concretize(state, reg(state, ins.c));
      if (!state.space.hasObject(obj) ||
          index >= state.space.objectSize(obj)) {
        kill(state, "out-of-bounds store");
        return false;
      }
      state.space.store(obj, index, reg(state, ins.a));
      break;
    }
    case Op::kLoadG: {
      const auto index = static_cast<std::uint64_t>(ins.imm);
      if (index >= state.space.objectSize(kGlobalsObject)) {
        kill(state, "out-of-bounds global load");
        return false;
      }
      setReg(state, ins.a, state.space.load(kGlobalsObject, index));
      break;
    }
    case Op::kStoreG: {
      const auto index = static_cast<std::uint64_t>(ins.imm);
      if (index >= state.space.objectSize(kGlobalsObject)) {
        kill(state, "out-of-bounds global store");
        return false;
      }
      state.space.store(kGlobalsObject, index, reg(state, ins.a));
      break;
    }
    case Op::kSymbolic: {
      const std::string label(state.program().string(ins.str));
      const std::uint32_t n = state.symbolicCounters[label]++;
      const std::string name = "n" + std::to_string(state.node()) + "." +
                               label + "." + std::to_string(n);
      const expr::Ref var =
          ctx_.variable(name, static_cast<unsigned>(ins.imm));
      state.symbolics.push_back(var);
      setReg(state, ins.a, ctx_.zext(var, 64));
      stats_.bump("vm.symbolics");
      break;
    }
    case Op::kAssume: {
      const expr::Ref cond = ctx_.boolCast(reg(state, ins.a));
      if (cond->isTrue()) break;
      if (cond->isFalse() || !solver_.mayBeTrue(state.constraints, cond)) {
        state.status = StateStatus::kInfeasible;
        stats_.bump("vm.infeasible_assumes");
        return false;
      }
      state.constraints.add(cond);
      break;
    }
    case Op::kSend: {
      const std::uint64_t dst = concretize(state, reg(state, ins.a));
      const std::uint64_t obj = concretize(state, reg(state, ins.b));
      const std::uint64_t len = concretize(state, reg(state, ins.c));
      if (!state.space.hasObject(obj) || len > state.space.objectSize(obj)) {
        kill(state, "send with invalid payload object");
        return false;
      }
      stats_.bump("vm.sends");
      // Advance pc before the callback: the mapping algorithm may fork
      // `state` itself (it never does — senders are not forked — but the
      // state must be consistent while the engine inspects it).
      state.pc = nextPc;
      sink.onSend(state, static_cast<NodeId>(dst),
                  state.space.read(obj, len));
      return state.status == StateStatus::kRunning;
    }
    case Op::kSetTimer: {
      const std::uint64_t delay = concretize(state, reg(state, ins.a));
      const auto timerId = static_cast<std::uint32_t>(ins.imm);
      // Re-arming replaces any pending expiry of the same timer.
      state.pendingEvents.eraseIf([&](const PendingEvent& e) {
        return e.kind == EventKind::kTimer && e.a == timerId;
      });
      PendingEvent event;
      event.time = state.clock + delay;
      event.kind = EventKind::kTimer;
      event.a = timerId;
      event.seq = state.nextEventSeq++;
      state.activeTimers[timerId] = event.seq;
      state.pendingEvents.push_back(std::move(event));
      break;
    }
    case Op::kStopTimer: {
      const auto timerId = static_cast<std::uint32_t>(ins.imm);
      state.pendingEvents.eraseIf([&](const PendingEvent& e) {
        return e.kind == EventKind::kTimer && e.a == timerId;
      });
      state.activeTimers.erase(timerId);
      break;
    }
    case Op::kSelf:
      setReg(state, ins.a, ctx_.constant(state.node(), 64));
      break;
    case Op::kNow:
      setReg(state, ins.a, ctx_.constant(state.clock, 64));
      break;
    case Op::kNumNodes:
      setReg(state, ins.a, ctx_.constant(numNodes_, 64));
      break;
    case Op::kLog:
      sink.onLog(state, state.program().string(ins.str), reg(state, ins.a));
      break;
  }

  state.pc = nextPc;
  return true;
}

}  // namespace sde::vm
