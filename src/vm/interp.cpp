#include "vm/interp.hpp"

#include <algorithm>
#include <chrono>
#include <deque>

namespace sde::vm {

namespace {

// Applies a 64-bit ALU operation through the expression builder.
expr::Ref applyAlu(expr::Context& ctx, Op op, expr::Ref a, expr::Ref b) {
  switch (op) {
    case Op::kAdd:
      return ctx.add(a, b);
    case Op::kSub:
      return ctx.sub(a, b);
    case Op::kMul:
      return ctx.mul(a, b);
    case Op::kUDiv:
      return ctx.udiv(a, b);
    case Op::kURem:
      return ctx.urem(a, b);
    case Op::kSDiv:
      return ctx.sdiv(a, b);
    case Op::kSRem:
      return ctx.srem(a, b);
    case Op::kAnd:
      return ctx.bvAnd(a, b);
    case Op::kOr:
      return ctx.bvOr(a, b);
    case Op::kXor:
      return ctx.bvXor(a, b);
    case Op::kShl:
      return ctx.shl(a, b);
    case Op::kLShr:
      return ctx.lshr(a, b);
    case Op::kAShr:
      return ctx.ashr(a, b);
    case Op::kEq:
      return ctx.zext(ctx.eq(a, b), 64);
    case Op::kNe:
      return ctx.zext(ctx.ne(a, b), 64);
    case Op::kUlt:
      return ctx.zext(ctx.ult(a, b), 64);
    case Op::kUle:
      return ctx.zext(ctx.ule(a, b), 64);
    case Op::kSlt:
      return ctx.zext(ctx.slt(a, b), 64);
    case Op::kSle:
      return ctx.zext(ctx.sle(a, b), 64);
    default:
      SDE_UNREACHABLE("applyAlu: not an ALU op");
  }
}

}  // namespace

expr::Ref Interpreter::reg(ExecutionState& state, std::uint8_t index) const {
  SDE_ASSERT(index < kNumRegisters, "register out of range");
  expr::Ref v = state.regs_[index];
  return v == nullptr ? zero64() : v;
}

void Interpreter::setReg(ExecutionState& state, std::uint8_t index,
                         expr::Ref value) {
  SDE_ASSERT(index < kNumRegisters, "register out of range");
  SDE_ASSERT(value->width() == 64, "registers hold 64-bit words");
  state.regs_[index] = value;
}

void Interpreter::kill(ExecutionState& state, std::string_view why) {
  state.status = StateStatus::kKilled;
  state.failureMessage = std::string(why);
  stats_.bump("vm.killed");
}

std::uint64_t Interpreter::concretize(ExecutionState& state,
                                      expr::Ref value) {
  if (value->isConstant()) return value->value();
  stats_.bump("vm.concretizations");
  const auto v = solver_.getValue(state.constraints, value);
  SDE_ASSERT(v.has_value(),
             "concretize on an infeasible state (engine must not schedule "
             "infeasible states)");
  // Pin the state to the chosen value so later paths stay consistent.
  state.constraints.add(ctx_.eq(value, ctx_.constant(*v, 64)));
  return *v;
}

void Interpreter::runEvent(ExecutionState& state, Entry entry,
                           std::span<const expr::Ref> args, EffectSink& sink) {
  SDE_ASSERT(state.status == StateStatus::kIdle, "runEvent on non-idle state");
  const auto entryPc = state.program().entry(entry);
  SDE_ASSERT(entryPc.has_value(), "program lacks the dispatched entry");
  SDE_ASSERT(args.size() <= 3, "at most three event arguments");

  state.status = StateStatus::kRunning;
  state.pc = *entryPc;
  state.callStack.clear();
  for (std::size_t i = 0; i < 3; ++i)
    setReg(state, static_cast<std::uint8_t>(i),
           i < args.size() ? args[i] : zero64());

  effects_ = EventEffects{};

  // Threaded/fused dispatch runs non-merge events through the decoded
  // stream; merge mode and opcode-timing profiling keep the per-step
  // switch loop (identical architectural effects either way).
  const DecodedProgram* decoded =
      config_.dispatch != DispatchMode::kSwitch && !config_.mergeStates &&
              !config_.opcodeTiming
          ? &decodedFor(state.program())
          : nullptr;

  std::deque<ExecutionState*> worklist{&state};
  while (!worklist.empty()) {
    ExecutionState* current = worklist.front();
    worklist.pop_front();
    if (current->mergedAway) continue;
    std::uint64_t steps = 0;
    std::vector<ExecutionState*> forked;
    timingPrev_ = kNoPrevOp;
    // Parked at a join, or re-queued behind a released waiter: the state
    // is still kRunning and resumes later — do not idle or untoken it.
    bool suspended = false;
    if (decoded != nullptr) {
      if (current->status == StateStatus::kRunning)
        runDecoded(*current, *decoded, sink, forked);
      for (ExecutionState* child : forked) worklist.push_back(child);
      continue;
    }
    while (current->status == StateStatus::kRunning && !current->mergedAway) {
      if (config_.mergeStates && !current->mergeTokens.empty()) {
        const auto token = current->mergeTokens.back();
        if (current->pc == token->joinPc &&
            current->callStack.size() == token->depth) {
          current->mergeTokens.pop_back();
          const Arrival arrival =
              arriveAtJoin(*current, token, sink, worklist);
          if (arrival == Arrival::kContinue) continue;  // outer token next
          if (arrival != Arrival::kAbsorbed) suspended = true;
          break;
        }
        // Sends must not be reordered against parked siblings: drop the
        // tokens first, and if a (lower-id) waiter resumes, re-queue the
        // sender behind it so the global send order matches the unmerged
        // run (where the waiter completed before this state started).
        if (current->program().at(current->pc).op == Op::kSend) {
          const std::size_t released = releaseTokens(*current, worklist);
          if (released > 0) {
            worklist.insert(
                worklist.begin() + static_cast<std::ptrdiff_t>(released),
                current);
            suspended = true;
            break;
          }
        }
      }
      if (++steps > config_.maxStepsPerEvent) {
        kill(*current, "per-event step limit exceeded");
        break;
      }
      if (config_.opcodeTiming) {
        // Profiling mode: inclusive wall-time per instruction (nested
        // solver/mapper work included) plus the adjacent-pair counts the
        // superinstruction selection is audited against.
        const auto op =
            static_cast<std::uint16_t>(current->program().at(current->pc).op);
        const auto t0 = std::chrono::steady_clock::now();
        const bool cont = step(*current, sink, forked);
        opNanos_[op] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (timingPrev_ != kNoPrevOp)
          ++pairCounts_[timingPrev_ * kNumOps + op];
        timingPrev_ = op;
        if (!cont) break;
      } else if (!step(*current, sink, forked)) {
        break;
      }
    }
    if (!suspended) {
      if (current->status == StateStatus::kRunning && !current->mergedAway)
        current->status = StateStatus::kIdle;
      // A finished or absorbed state can no longer reach a join: drop
      // its remaining tokens, releasing waiters stranded by it.
      if (!current->mergeTokens.empty()) releaseTokens(*current, worklist);
    }
    // Forked siblings execute after the current state completes, in
    // creation order (deterministic breadth-first exploration).
    for (ExecutionState* child : forked) worklist.push_back(child);
  }
  // The per-instruction counter is accumulated locally and flushed once
  // per event: a per-step StatsRegistry::bump is a string-keyed map
  // lookup and dominated the old hot path. Observers only read stats
  // between events, so the visible trajectory is unchanged.
  if (effects_.instructions != 0)
    stats_.bump("vm.instructions", effects_.instructions);
  SDE_ASSERT(parkedCount_ == 0, "merge tokens must resolve by event end");
}

bool Interpreter::step(ExecutionState& state, EffectSink& sink,
                       std::vector<ExecutionState*>& worklist) {
  const Instr& ins = state.program().at(state.pc);
  // Merge mode: the next instruction would concretize a symbolic
  // operand, which must never observe a guard-dependent value. Split the
  // innermost guard back apart (re-checking until no guards remain) and
  // re-dispatch this pc on the split state(s).
  if (needsGuardSplit(state)) {
    splitLastGuard(state, sink, worklist);
    return true;
  }
  ++state.executedInstructions;
  ++opCounts_[static_cast<std::size_t>(ins.op)];
  ++effects_.instructions;
  std::size_t nextPc = state.pc + 1;

  if (isBinaryAlu(ins.op)) {
    setReg(state, ins.a,
           applyAlu(ctx_, ins.op, reg(state, ins.b), reg(state, ins.c)));
    state.pc = nextPc;
    return true;
  }

  switch (ins.op) {
    default:
      SDE_UNREACHABLE("ALU ops handled above");
    case Op::kNop:
      break;
    case Op::kConst:
      setReg(state, ins.a,
             ctx_.constant(static_cast<std::uint64_t>(ins.imm), 64));
      break;
    case Op::kMov:
      setReg(state, ins.a, reg(state, ins.b));
      break;
    case Op::kNot:
      setReg(state, ins.a, ctx_.bvNot(reg(state, ins.b)));
      break;
    case Op::kJmp:
      nextPc = static_cast<std::size_t>(ins.imm);
      break;
    case Op::kBr: {
      const expr::Ref value = reg(state, ins.a);
      const expr::Ref cond = ctx_.boolCast(value);
      const auto takenPc = static_cast<std::size_t>(ins.imm);
      const auto fallPc = static_cast<std::size_t>(ins.imm2);
      if (cond->isConstant()) {
        nextPc = cond->isTrue() ? takenPc : fallPc;
        break;
      }
      switch (solver_.classify(state.constraints, cond)) {
        case solver::Validity::kTrue:
          nextPc = takenPc;
          break;
        case solver::Validity::kFalse:
          nextPc = fallPc;
          break;
        case solver::Validity::kUnknown: {
          stats_.bump("vm.forks");
          ++effects_.forks;
          const std::size_t branchPc = state.pc;
          ExecutionState& child = sink.forkState(state);
          noteForkTokens(child);
          // Parent takes the true edge, child the false edge.
          state.constraints.add(cond);
          child.constraints.add(ctx_.logicalNot(cond));
          child.pc = fallPc;
          SDE_ASSERT(child.status == StateStatus::kRunning,
                     "fork of a running state must be running");
          // Merge mode: when every path from this branch funnels through
          // an intra-handler join point, tag both siblings with a shared
          // token so the first to reach the join parks for the other.
          if (config_.mergeStates) {
            if (const auto join =
                    postdomFor(state.program()).joinFor(branchPc)) {
              auto token = std::make_shared<ExecutionState::MergeToken>();
              token->joinPc = *join;
              token->depth = state.callStack.size();
              token->live = 2;
              state.mergeTokens.push_back(token);
              child.mergeTokens.push_back(token);
            }
          }
          worklist.push_back(&child);
          nextPc = takenPc;
          break;
        }
      }
      break;
    }
    case Op::kCall:
      state.callStack.push_back(nextPc);
      nextPc = static_cast<std::size_t>(ins.imm);
      break;
    case Op::kRet:
      if (state.callStack.empty()) {
        // Returning from the handler's entry frame ends the event.
        state.status = StateStatus::kIdle;
        return false;
      }
      nextPc = state.callStack.back();
      state.callStack.pop_back();
      break;
    case Op::kHalt:
      state.status = StateStatus::kIdle;
      return false;
    case Op::kFail:
      state.status = StateStatus::kFailed;
      state.failureMessage = std::string(state.program().string(ins.str));
      stats_.bump("vm.failures");
      return false;
    case Op::kAlloc: {
      const std::uint64_t cells = concretize(state, reg(state, ins.b));
      const std::uint64_t id = state.space.alloc(ctx_, cells);
      setReg(state, ins.a, ctx_.constant(id, 64));
      break;
    }
    case Op::kLoad: {
      const std::uint64_t obj = concretize(state, reg(state, ins.b));
      const std::uint64_t index = concretize(state, reg(state, ins.c));
      if (!state.space.hasObject(obj) ||
          index >= state.space.objectSize(obj)) {
        kill(state, "out-of-bounds load");
        return false;
      }
      setReg(state, ins.a, state.space.load(obj, index));
      break;
    }
    case Op::kStore: {
      const std::uint64_t obj = concretize(state, reg(state, ins.b));
      const std::uint64_t index = concretize(state, reg(state, ins.c));
      if (!state.space.hasObject(obj) ||
          index >= state.space.objectSize(obj)) {
        kill(state, "out-of-bounds store");
        return false;
      }
      state.space.store(obj, index, reg(state, ins.a));
      break;
    }
    case Op::kLoadG: {
      const auto index = static_cast<std::uint64_t>(ins.imm);
      if (index >= state.space.objectSize(kGlobalsObject)) {
        kill(state, "out-of-bounds global load");
        return false;
      }
      setReg(state, ins.a, state.space.load(kGlobalsObject, index));
      break;
    }
    case Op::kStoreG: {
      const auto index = static_cast<std::uint64_t>(ins.imm);
      if (index >= state.space.objectSize(kGlobalsObject)) {
        kill(state, "out-of-bounds global store");
        return false;
      }
      state.space.store(kGlobalsObject, index, reg(state, ins.a));
      break;
    }
    case Op::kSymbolic: {
      const std::string label(state.program().string(ins.str));
      const std::uint32_t n = state.symbolicCounters[label]++;
      const std::string name = "n" + std::to_string(state.node()) + "." +
                               label + "." + std::to_string(n);
      const expr::Ref var =
          ctx_.variable(name, static_cast<unsigned>(ins.imm));
      state.symbolics.push_back(var);
      setReg(state, ins.a, ctx_.zext(var, 64));
      stats_.bump("vm.symbolics");
      ++effects_.symbolicsMinted;
      break;
    }
    case Op::kAssume: {
      const expr::Ref cond = ctx_.boolCast(reg(state, ins.a));
      if (cond->isTrue()) break;
      if (cond->isFalse() || !solver_.mayBeTrue(state.constraints, cond)) {
        state.status = StateStatus::kInfeasible;
        stats_.bump("vm.infeasible_assumes");
        return false;
      }
      state.constraints.add(cond);
      break;
    }
    case Op::kSend: {
      const std::uint64_t dst = concretize(state, reg(state, ins.a));
      const std::uint64_t obj = concretize(state, reg(state, ins.b));
      const std::uint64_t len = concretize(state, reg(state, ins.c));
      if (!state.space.hasObject(obj) || len > state.space.objectSize(obj)) {
        kill(state, "send with invalid payload object");
        return false;
      }
      stats_.bump("vm.sends");
      ++effects_.sends;
      // Advance pc before the callback: the mapping algorithm may fork
      // `state` itself (it never does — senders are not forked — but the
      // state must be consistent while the engine inspects it).
      state.pc = nextPc;
      sink.onSend(state, static_cast<NodeId>(dst),
                  state.space.read(obj, len));
      return state.status == StateStatus::kRunning;
    }
    case Op::kSetTimer: {
      const expr::Ref delayExpr = reg(state, ins.a);
      const bool constantDelay = delayExpr->isConstant();
      const std::uint64_t delay = concretize(state, delayExpr);
      const auto timerId = static_cast<std::uint32_t>(ins.imm);
      ++effects_.timerOps;
      effects_.rearmConstant = constantDelay;
      effects_.rearmTimerId = timerId;
      effects_.rearmDelay = delay;
      // Re-arming replaces any pending expiry of the same timer.
      state.pendingEvents.eraseIf([&](const PendingEvent& e) {
        return e.kind == EventKind::kTimer && e.a == timerId;
      });
      PendingEvent event;
      event.time = state.clock + delay;
      event.kind = EventKind::kTimer;
      event.a = timerId;
      event.seq = state.nextEventSeq++;
      state.activeTimers[timerId] = event.seq;
      state.pendingEvents.push_back(std::move(event));
      break;
    }
    case Op::kStopTimer: {
      const auto timerId = static_cast<std::uint32_t>(ins.imm);
      ++effects_.timerOps;
      effects_.rearmConstant = false;
      state.pendingEvents.eraseIf([&](const PendingEvent& e) {
        return e.kind == EventKind::kTimer && e.a == timerId;
      });
      state.activeTimers.erase(timerId);
      break;
    }
    case Op::kSelf:
      setReg(state, ins.a, ctx_.constant(state.node(), 64));
      break;
    case Op::kNow:
      setReg(state, ins.a, ctx_.constant(state.clock, 64));
      effects_.usedNow = true;
      break;
    case Op::kNumNodes:
      setReg(state, ins.a, ctx_.constant(numNodes_, 64));
      break;
    case Op::kLog:
      sink.onLog(state, state.program().string(ins.str), reg(state, ins.a));
      break;
  }

  state.pc = nextPc;
  return true;
}

// --- Threaded fast path ------------------------------------------------------
//
// Executes one state's handler run over the pre-decoded stream. The
// bodies below mirror step() case-for-case: same expression-builder call
// sequences, same kill messages, same pc/step accounting — that
// one-to-one correspondence is the digest-invariance argument (DESIGN.md
// section 20), and the dispatch fuzz battery enforces it end-to-end.
//
// Computed-goto dispatch on GCC/Clang; a switch over the same handler
// indices elsewhere. The OPCASE/FCASE/DISPATCH macros keep both builds
// on ONE copy of each op body (in the switch build the superinstruction
// tails `goto` a label placed inside the br case).

#if defined(__GNUC__) || defined(__clang__)
#define SDE_COMPUTED_GOTO 1
#else
#define SDE_COMPUTED_GOTO 0
#endif

void Interpreter::runDecoded(ExecutionState& state,
                             const DecodedProgram& decoded, EffectSink& sink,
                             std::vector<ExecutionState*>& forked) {
  expr::Context& ctx = ctx_;
  const DecodedInstr* const code = decoded.code();
  expr::Ref* const regs = state.regs_.data();
  const std::uint64_t maxSteps = config_.maxStepsPerEvent;
  std::uint64_t steps = 0;
  std::uint64_t flushed = 0;
  std::size_t pc = state.pc;
  const DecodedInstr* d = nullptr;

  // Per-instruction bookkeeping is accumulated in `steps` and flushed
  // before anything that can observe the state mid-run (fork clones,
  // send/log callbacks) and at exit — so observers see exactly the
  // values the per-step baseline would have shown them.
  const auto flushSteps = [&] {
    const std::uint64_t delta = steps - flushed;
    state.executedInstructions += delta;
    effects_.instructions += delta;
    flushed = steps;
  };
  const auto rd = [&](std::uint8_t r) -> expr::Ref {
    const expr::Ref v = regs[r];
    return v != nullptr ? v : zero64();
  };

#if SDE_COMPUTED_GOTO
  // Label table indexed by DecodedInstr::handler: the plain opcodes in
  // enum order, then the superinstructions, then the overrun sentinel.
  static const void* const kLabels[] = {
      &&H_kNop,      &&H_kConst,     &&H_kMov,       &&H_kAdd,
      &&H_kSub,      &&H_kMul,       &&H_kUDiv,      &&H_kURem,
      &&H_kSDiv,     &&H_kSRem,      &&H_kAnd,       &&H_kOr,
      &&H_kXor,      &&H_kShl,       &&H_kLShr,      &&H_kAShr,
      &&H_kNot,      &&H_kEq,        &&H_kNe,        &&H_kUlt,
      &&H_kUle,      &&H_kSlt,       &&H_kSle,       &&H_kJmp,
      &&H_kBr,       &&H_kCall,      &&H_kRet,       &&H_kHalt,
      &&H_kFail,     &&H_kAlloc,     &&H_kLoad,      &&H_kStore,
      &&H_kLoadG,    &&H_kStoreG,    &&H_kSymbolic,  &&H_kAssume,
      &&H_kSend,     &&H_kSetTimer,  &&H_kStopTimer, &&H_kSelf,
      &&H_kNow,      &&H_kNumNodes,  &&H_kLog,       &&H_AluBr,
      &&H_ConstAlu,  &&H_LoadGBr,    &&H_ConstStoreG, &&H_MovBr,
      &&H_OutOfRange,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumHandlers,
                "label table must cover every handler");
  static_assert(kNumOps == 43, "Op enum changed: update the label table");

#define OPCASE(name) H_##name:
#define FCASE(name) H_##name:
#define BR_TARGET
#define DISPATCH()                                           \
  do {                                                       \
    if (++steps > maxSteps) goto limit_kill;                 \
    d = code + pc;                                           \
    ++opCounts_[static_cast<std::size_t>(d->op)];            \
    goto* kLabels[d->handler];                               \
  } while (0)
#else
#define OPCASE(name) case static_cast<std::uint16_t>(Op::name):
#define FCASE(name) case kHandler##name:
#define BR_TARGET H_kBr:
#define DISPATCH()                                           \
  do {                                                       \
    if (++steps > maxSteps) goto limit_kill;                 \
    d = code + pc;                                           \
    ++opCounts_[static_cast<std::size_t>(d->op)];            \
    goto dispatch_top;                                       \
  } while (0)
#endif

// Second half of a superinstruction: the per-instruction step check and
// count for op2, placed AFTER op1's body so a mid-pair limit kill leaves
// exactly the baseline's counters (op2 unexecuted, uncounted).
#define FUSED_NEXT()                                         \
  do {                                                       \
    if (++steps > maxSteps) goto limit_kill;                 \
    d = code + pc;                                           \
    ++opCounts_[static_cast<std::size_t>(d->op)];            \
  } while (0)

// The three-register ALU forms share one body shape; Op is a compile-
// time constant per label, so applyAlu folds to the specific builder
// call.
#define ALU_BODY(name)                                          \
  OPCASE(name) {                                                \
    regs[d->a] = applyAlu(ctx, Op::name, rd(d->b), rd(d->c));   \
    ++pc;                                                       \
    DISPATCH();                                                 \
  }

  DISPATCH();

#if !SDE_COMPUTED_GOTO
dispatch_top:
  switch (d->handler) {
#endif

  OPCASE(kNop) {
    ++pc;
    DISPATCH();
  }

  OPCASE(kConst) {
    expr::Ref v = d->constCache;
    if (v == nullptr)
      v = d->constCache = ctx.constant(static_cast<std::uint64_t>(d->imm), 64);
    regs[d->a] = v;
    ++pc;
    DISPATCH();
  }

  OPCASE(kMov) {
    regs[d->a] = rd(d->b);
    ++pc;
    DISPATCH();
  }

  ALU_BODY(kAdd)
  ALU_BODY(kSub)
  ALU_BODY(kMul)
  ALU_BODY(kUDiv)
  ALU_BODY(kURem)
  ALU_BODY(kSDiv)
  ALU_BODY(kSRem)
  ALU_BODY(kAnd)
  ALU_BODY(kOr)
  ALU_BODY(kXor)
  ALU_BODY(kShl)
  ALU_BODY(kLShr)
  ALU_BODY(kAShr)

  OPCASE(kNot) {
    regs[d->a] = ctx.bvNot(rd(d->b));
    ++pc;
    DISPATCH();
  }

  ALU_BODY(kEq)
  ALU_BODY(kNe)
  ALU_BODY(kUlt)
  ALU_BODY(kUle)
  ALU_BODY(kSlt)
  ALU_BODY(kSle)

  OPCASE(kJmp) {
    pc = static_cast<std::size_t>(d->imm);
    DISPATCH();
  }

  OPCASE(kBr) {
    BR_TARGET {
      const expr::Ref cond = ctx.boolCast(rd(d->a));
      const auto takenPc = static_cast<std::size_t>(d->imm);
      const auto fallPc = static_cast<std::size_t>(d->imm2);
      if (cond->isConstant()) {
        pc = cond->isTrue() ? takenPc : fallPc;
        DISPATCH();
      }
      switch (solver_.classify(state.constraints, cond)) {
        case solver::Validity::kTrue:
          pc = takenPc;
          break;
        case solver::Validity::kFalse:
          pc = fallPc;
          break;
        case solver::Validity::kUnknown: {
          stats_.bump("vm.forks");
          ++effects_.forks;
          flushSteps();
          state.pc = pc;  // the fork clones the branch pc, as in step()
          ExecutionState& child = sink.forkState(state);
          // Parent takes the true edge, child the false edge.
          state.constraints.add(cond);
          child.constraints.add(ctx.logicalNot(cond));
          child.pc = fallPc;
          SDE_ASSERT(child.status == StateStatus::kRunning,
                     "fork of a running state must be running");
          forked.push_back(&child);
          pc = takenPc;
          break;
        }
      }
      DISPATCH();
    }
  }

  OPCASE(kCall) {
    state.callStack.push_back(pc + 1);
    pc = static_cast<std::size_t>(d->imm);
    DISPATCH();
  }

  OPCASE(kRet) {
    if (state.callStack.empty()) {
      // Returning from the handler's entry frame ends the event (pc
      // parks on the ret instruction, exactly as in step()).
      state.status = StateStatus::kIdle;
      goto done;
    }
    pc = state.callStack.back();
    state.callStack.pop_back();
    DISPATCH();
  }

  OPCASE(kHalt) {
    state.status = StateStatus::kIdle;
    goto done;
  }

  OPCASE(kFail) {
    state.status = StateStatus::kFailed;
    state.failureMessage = std::string(state.program().string(d->str));
    stats_.bump("vm.failures");
    goto done;
  }

  OPCASE(kAlloc) {
    const std::uint64_t cells = concretize(state, rd(d->b));
    const std::uint64_t id = state.space.alloc(ctx, cells);
    regs[d->a] = ctx.constant(id, 64);
    ++pc;
    DISPATCH();
  }

  OPCASE(kLoad) {
    const std::uint64_t obj = concretize(state, rd(d->b));
    const std::uint64_t index = concretize(state, rd(d->c));
    if (!state.space.hasObject(obj) || index >= state.space.objectSize(obj)) {
      kill(state, "out-of-bounds load");
      goto done;
    }
    regs[d->a] = state.space.load(obj, index);
    ++pc;
    DISPATCH();
  }

  OPCASE(kStore) {
    const std::uint64_t obj = concretize(state, rd(d->b));
    const std::uint64_t index = concretize(state, rd(d->c));
    if (!state.space.hasObject(obj) || index >= state.space.objectSize(obj)) {
      kill(state, "out-of-bounds store");
      goto done;
    }
    state.space.store(obj, index, rd(d->a));
    ++pc;
    DISPATCH();
  }

  OPCASE(kLoadG) {
    const auto index = static_cast<std::uint64_t>(d->imm);
    if (index >= state.space.objectSize(kGlobalsObject)) {
      kill(state, "out-of-bounds global load");
      goto done;
    }
    regs[d->a] = state.space.load(kGlobalsObject, index);
    ++pc;
    DISPATCH();
  }

  OPCASE(kStoreG) {
    const auto index = static_cast<std::uint64_t>(d->imm);
    if (index >= state.space.objectSize(kGlobalsObject)) {
      kill(state, "out-of-bounds global store");
      goto done;
    }
    state.space.store(kGlobalsObject, index, rd(d->a));
    ++pc;
    DISPATCH();
  }

  OPCASE(kSymbolic) {
    const std::string label(state.program().string(d->str));
    const std::uint32_t n = state.symbolicCounters[label]++;
    const std::string name = "n" + std::to_string(state.node()) + "." + label +
                             "." + std::to_string(n);
    const expr::Ref var = ctx.variable(name, static_cast<unsigned>(d->imm));
    state.symbolics.push_back(var);
    regs[d->a] = ctx.zext(var, 64);
    stats_.bump("vm.symbolics");
    ++effects_.symbolicsMinted;
    ++pc;
    DISPATCH();
  }

  OPCASE(kAssume) {
    const expr::Ref cond = ctx.boolCast(rd(d->a));
    if (!cond->isTrue()) {
      if (cond->isFalse() || !solver_.mayBeTrue(state.constraints, cond)) {
        state.status = StateStatus::kInfeasible;
        stats_.bump("vm.infeasible_assumes");
        goto done;
      }
      state.constraints.add(cond);
    }
    ++pc;
    DISPATCH();
  }

  OPCASE(kSend) {
    const std::uint64_t dst = concretize(state, rd(d->a));
    const std::uint64_t obj = concretize(state, rd(d->b));
    const std::uint64_t len = concretize(state, rd(d->c));
    if (!state.space.hasObject(obj) || len > state.space.objectSize(obj)) {
      kill(state, "send with invalid payload object");
      goto done;
    }
    stats_.bump("vm.sends");
    ++effects_.sends;
    // Advance pc and sync the state before the callback, as in step().
    ++pc;
    flushSteps();
    state.pc = pc;
    sink.onSend(state, static_cast<NodeId>(dst), state.space.read(obj, len));
    if (state.status != StateStatus::kRunning) goto done;
    DISPATCH();
  }

  OPCASE(kSetTimer) {
    const expr::Ref delayExpr = rd(d->a);
    const bool constantDelay = delayExpr->isConstant();
    const std::uint64_t delay = concretize(state, delayExpr);
    const auto timerId = static_cast<std::uint32_t>(d->imm);
    ++effects_.timerOps;
    effects_.rearmConstant = constantDelay;
    effects_.rearmTimerId = timerId;
    effects_.rearmDelay = delay;
    // Re-arming replaces any pending expiry of the same timer.
    state.pendingEvents.eraseIf([&](const PendingEvent& e) {
      return e.kind == EventKind::kTimer && e.a == timerId;
    });
    PendingEvent event;
    event.time = state.clock + delay;
    event.kind = EventKind::kTimer;
    event.a = timerId;
    event.seq = state.nextEventSeq++;
    state.activeTimers[timerId] = event.seq;
    state.pendingEvents.push_back(std::move(event));
    ++pc;
    DISPATCH();
  }

  OPCASE(kStopTimer) {
    const auto timerId = static_cast<std::uint32_t>(d->imm);
    ++effects_.timerOps;
    effects_.rearmConstant = false;
    state.pendingEvents.eraseIf([&](const PendingEvent& e) {
      return e.kind == EventKind::kTimer && e.a == timerId;
    });
    state.activeTimers.erase(timerId);
    ++pc;
    DISPATCH();
  }

  OPCASE(kSelf) {
    regs[d->a] = ctx.constant(state.node(), 64);
    ++pc;
    DISPATCH();
  }

  OPCASE(kNow) {
    regs[d->a] = ctx.constant(state.clock, 64);
    effects_.usedNow = true;
    ++pc;
    DISPATCH();
  }

  OPCASE(kNumNodes) {
    regs[d->a] = ctx.constant(numNodes_, 64);
    ++pc;
    DISPATCH();
  }

  OPCASE(kLog) {
    flushSteps();
    state.pc = pc;  // the callback observes the log pc, as in step()
    sink.onLog(state, state.program().string(d->str), rd(d->a));
    ++pc;
    DISPATCH();
  }

  // --- Superinstructions ---------------------------------------------------
  // Each executes the exact bodies of its two constituent ops with the
  // per-instruction step check in between; the only thing fused away is
  // the indirect dispatch (and for the +br forms the condition-register
  // re-read, which is identity-equal by construction).

  FCASE(AluBr) {
    regs[d->a] = applyAlu(ctx, d->op, rd(d->b), rd(d->c));
    ++pc;
    FUSED_NEXT();
    goto H_kBr;
  }

  FCASE(ConstAlu) {
    expr::Ref v = d->constCache;
    if (v == nullptr)
      v = d->constCache = ctx.constant(static_cast<std::uint64_t>(d->imm), 64);
    regs[d->a] = v;
    ++pc;
    FUSED_NEXT();
    regs[d->a] = applyAlu(ctx, d->op, rd(d->b), rd(d->c));
    ++pc;
    DISPATCH();
  }

  FCASE(LoadGBr) {
    const auto index = static_cast<std::uint64_t>(d->imm);
    if (index >= state.space.objectSize(kGlobalsObject)) {
      kill(state, "out-of-bounds global load");
      goto done;
    }
    regs[d->a] = state.space.load(kGlobalsObject, index);
    ++pc;
    FUSED_NEXT();
    goto H_kBr;
  }

  FCASE(ConstStoreG) {
    expr::Ref v = d->constCache;
    if (v == nullptr)
      v = d->constCache = ctx.constant(static_cast<std::uint64_t>(d->imm), 64);
    regs[d->a] = v;
    ++pc;
    FUSED_NEXT();
    {
      const auto index = static_cast<std::uint64_t>(d->imm);
      if (index >= state.space.objectSize(kGlobalsObject)) {
        kill(state, "out-of-bounds global store");
        goto done;
      }
      state.space.store(kGlobalsObject, index, rd(d->a));
    }
    ++pc;
    DISPATCH();
  }

  FCASE(MovBr) {
    regs[d->a] = rd(d->b);
    ++pc;
    FUSED_NEXT();
    goto H_kBr;
  }

  FCASE(OutOfRange) {
    state.pc = pc;
    flushSteps();
    SDE_ASSERT(false, "pc out of range");
    goto done;
  }

#if !SDE_COMPUTED_GOTO
    default:
      SDE_UNREACHABLE("invalid decoded handler");
  }
#endif

done:
  state.pc = pc;
  flushSteps();
  return;

limit_kill:
  --steps;  // the instruction that tripped the limit never executed
  state.pc = pc;
  flushSteps();
  kill(state, "per-event step limit exceeded");

#undef OPCASE
#undef FCASE
#undef BR_TARGET
#undef DISPATCH
#undef FUSED_NEXT
#undef ALU_BODY
}

const DecodedProgram& Interpreter::decodedFor(const Program& program) {
  auto it = decodedCache_.find(&program);
  if (it == decodedCache_.end())
    it = decodedCache_
             .emplace(std::piecewise_construct, std::forward_as_tuple(&program),
                      std::forward_as_tuple(
                          program, config_.dispatch == DispatchMode::kFused))
             .first;
  return it->second;
}

std::vector<Interpreter::OpcodeProfileEntry> Interpreter::opcodeProfile()
    const {
  std::vector<OpcodeProfileEntry> out;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (opCounts_[i] == 0 && opNanos_[i] == 0) continue;
    out.push_back({"op." + std::string(opName(static_cast<Op>(i))),
                   opCounts_[i], opNanos_[i]});
  }
  if (!pairCounts_.empty()) {
    struct PairRow {
      std::size_t first;
      std::size_t second;
      std::uint64_t count;
    };
    std::vector<PairRow> pairs;
    for (std::size_t a = 0; a < kNumOps; ++a)
      for (std::size_t b = 0; b < kNumOps; ++b)
        if (const std::uint64_t c = pairCounts_[a * kNumOps + b]; c != 0)
          pairs.push_back({a, b, c});
    std::sort(pairs.begin(), pairs.end(),
              [](const PairRow& x, const PairRow& y) {
                if (x.count != y.count) return x.count > y.count;
                if (x.first != y.first) return x.first < y.first;
                return x.second < y.second;
              });
    if (pairs.size() > 16) pairs.resize(16);  // top pairs only: fusion input
    for (const PairRow& p : pairs)
      out.push_back({"pair." + std::string(opName(static_cast<Op>(p.first))) +
                         "+" + std::string(opName(static_cast<Op>(p.second))),
                     p.count, 0});
  }
  return out;
}

const PostDominators& Interpreter::postdomFor(const Program& program) {
  auto it = postdomCache_.find(&program);
  if (it == postdomCache_.end())
    it = postdomCache_.emplace(&program, PostDominators(program)).first;
  return it->second;
}

void Interpreter::noteForkTokens(ExecutionState& child) {
  // fork() copied the parent's token stack; each shared token now has
  // one more live runner that can reach (or strand) its join.
  for (const auto& token : child.mergeTokens) token->live += 1;
}

bool Interpreter::needsGuardSplit(ExecutionState& state) const {
  if (!config_.mergeStates || state.mergeGuards.empty()) return false;
  const Instr& ins = state.program().at(state.pc);
  const auto symbolic = [&](std::uint8_t index) {
    const expr::Ref v = state.regs_[index];
    return v != nullptr && !v->isConstant();
  };
  // Conservative: any symbolic operand that is about to be concretized
  // forces a split, whether or not it mentions a guard. Concretization
  // pins the state with an equality the unmerged run would have issued
  // per arm, so it must only ever run on guard-free states.
  switch (ins.op) {
    case Op::kAlloc:
      return symbolic(ins.b);
    case Op::kLoad:
    case Op::kStore:
      return symbolic(ins.b) || symbolic(ins.c);
    case Op::kSend:
      return symbolic(ins.a) || symbolic(ins.b) || symbolic(ins.c);
    case Op::kSetTimer:
      return symbolic(ins.a);
    default:
      return false;
  }
}

void Interpreter::splitLastGuard(ExecutionState& state, EffectSink& sink,
                                 std::vector<ExecutionState*>& worklist) {
  stats_.bump("vm.merge_splits");
  const auto [feasTrue, feasFalse] = merger_.feasiblePolarities(state);
  SDE_ASSERT(feasTrue || feasFalse,
             "merged state with no syntactically feasible guard polarity");
  if (feasTrue && feasFalse) {
    ExecutionState& child = sink.forkState(state);
    noteForkTokens(child);
    ++effects_.forks;
    // True arm (the old survivor, created first unmerged) runs first.
    worklist.push_back(&child);
    merger_.applyLastGuard(state, true);
    merger_.applyLastGuard(child, false);
  } else {
    // The other polarity folds a constraint item to false: this fork
    // child never represented that arm (a sibling fork covers it).
    merger_.applyLastGuard(state, feasTrue);
  }
}

namespace {

// Front-enqueues `released` in ascending-id order: pushed descending,
// so the queue front ends up lowest-id first — the order these states
// completed in the unmerged exploration.
void frontEnqueueById(std::vector<ExecutionState*>& released,
                      std::deque<ExecutionState*>& runnable) {
  std::sort(released.begin(), released.end(),
            [](const ExecutionState* a, const ExecutionState* b) {
              return a->id() > b->id();
            });
  for (ExecutionState* s : released) runnable.push_front(s);
}

}  // namespace

Interpreter::Arrival Interpreter::arriveAtJoin(
    ExecutionState& state,
    const std::shared_ptr<ExecutionState::MergeToken>& token, EffectSink& sink,
    std::deque<ExecutionState*>& runnable) {
  // The survivor of a merge is always the lower id (the state created —
  // and completed — first unmerged). Arrival order does NOT imply id
  // order: a nested join can delay a low-id state past its higher-id
  // siblings, so the arriving state may be either side of the merge.
  for (std::size_t i = 0; i < token->parked.size();) {
    ExecutionState* waiter = token->parked[i];
    if (waiter->id() < state.id()) {
      if (sink.tryMerge(*waiter, state)) {
        token->live -= 1;
        // Outer tokens the absorbed state held can no longer be
        // honoured. (The waiter keeps holding the same shared stack.)
        releaseTokens(state, runnable);
        maybeReleaseParked(*token, runnable);
        return Arrival::kAbsorbed;
      }
      ++i;
    } else {
      if (sink.tryMerge(state, *waiter)) {
        token->live -= 1;
        --parkedCount_;
        token->parked.erase(token->parked.begin() +
                            static_cast<std::ptrdiff_t>(i));
        releaseTokens(*waiter, runnable);
        continue;  // the arriving state may absorb further waiters
      }
      ++i;
    }
  }
  // How many runners still hold the token and could yet arrive?
  const std::size_t holders = static_cast<std::size_t>(token->live) -
                              token->parked.size() - 1 /* self */;
  if (holders > 0) {
    token->parked.push_back(&state);
    ++parkedCount_;
    return Arrival::kParked;
  }
  token->live -= 1;
  if (token->parked.empty()) return Arrival::kContinue;
  // Every merge declined and nobody else can arrive: resume everyone in
  // unmerged completion (= id) order, `state` slotted in by its own id.
  std::vector<ExecutionState*> released;
  collectReleasable(*token, released);
  SDE_ASSERT(!released.empty(), "stranded waiters must release");
  released.push_back(&state);
  frontEnqueueById(released, runnable);
  return Arrival::kYield;
}

std::size_t Interpreter::releaseTokens(ExecutionState& state,
                                       std::deque<ExecutionState*>& runnable) {
  std::vector<ExecutionState*> released;
  while (!state.mergeTokens.empty()) {
    const auto token = state.mergeTokens.back();
    state.mergeTokens.pop_back();
    token->live -= 1;
    collectReleasable(*token, released);
  }
  std::size_t lower = 0;
  for (const ExecutionState* s : released) lower += s->id() < state.id();
  frontEnqueueById(released, runnable);
  return lower;
}

void Interpreter::collectReleasable(ExecutionState::MergeToken& token,
                                    std::vector<ExecutionState*>& out) {
  if (token.parked.empty() ||
      static_cast<std::size_t>(token.live) > token.parked.size())
    return;
  // Only waiters remain: nobody can arrive to merge with them.
  out.insert(out.end(), token.parked.begin(), token.parked.end());
  parkedCount_ -= token.parked.size();
  token.live = 0;
  token.parked.clear();
}

void Interpreter::maybeReleaseParked(ExecutionState::MergeToken& token,
                                     std::deque<ExecutionState*>& runnable) {
  std::vector<ExecutionState*> released;
  collectReleasable(token, released);
  frontEnqueueById(released, runnable);
}

}  // namespace sde::vm
