#include "vm/program.hpp"

#include <sstream>

namespace sde::vm {

std::string_view entryName(Entry entry) {
  switch (entry) {
    case Entry::kInit:
      return "init";
    case Entry::kTimer:
      return "timer";
    case Entry::kRecv:
      return "recv";
  }
  return "?";
}

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "program " << name_ << " (globals: " << globalsSize_ << " cells)\n";
  for (const auto& [entry, pc] : entries_)
    os << "  entry " << entryName(entry) << " -> " << pc << "\n";
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instr& ins = code_[pc];
    os << "  " << pc << ": " << opName(ins.op) << " a=" << int(ins.a)
       << " b=" << int(ins.b) << " c=" << int(ins.c) << " imm=" << ins.imm;
    if (ins.op == Op::kBr) os << " imm2=" << ins.imm2;
    if (ins.op == Op::kFail || ins.op == Op::kSymbolic || ins.op == Op::kLog)
      os << " str=\"" << string(ins.str) << "\"";
    os << "\n";
  }
  return os.str();
}

}  // namespace sde::vm
