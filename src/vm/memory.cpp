#include "vm/memory.hpp"

namespace sde::vm {

void AddressSpace::initGlobals(expr::Context& ctx, std::uint64_t cells) {
  SDE_ASSERT(!objects_.contains(kGlobalsObject), "globals initialised twice");
  auto payload = std::make_shared<Cells>(cells, ctx.constant(0, 64));
  objects_.emplace(kGlobalsObject, std::move(payload));
}

std::uint64_t AddressSpace::alloc(expr::Context& ctx, std::uint64_t cells) {
  const std::uint64_t id = nextId_++;
  objects_.emplace(id, std::make_shared<Cells>(cells, ctx.constant(0, 64)));
  return id;
}

std::uint64_t AddressSpace::allocFrom(Cells content) {
  const std::uint64_t id = nextId_++;
  objects_.emplace(id, std::make_shared<Cells>(std::move(content)));
  return id;
}

std::uint64_t AddressSpace::objectSize(std::uint64_t id) const {
  const auto it = objects_.find(id);
  SDE_ASSERT(it != objects_.end(), "objectSize of unknown object");
  return it->second->size();
}

expr::Ref AddressSpace::load(std::uint64_t id, std::uint64_t index) const {
  const auto it = objects_.find(id);
  SDE_ASSERT(it != objects_.end(), "load from unknown object");
  SDE_ASSERT(index < it->second->size(), "load out of bounds");
  return (*it->second)[index];
}

std::shared_ptr<AddressSpace::Cells>& AddressSpace::mutableObject(
    std::uint64_t id) {
  const auto it = objects_.find(id);
  SDE_ASSERT(it != objects_.end(), "store to unknown object");
  // Copy-on-write: clone the payload if any other state still shares it.
  if (it->second.use_count() > 1)
    it->second = std::make_shared<Cells>(*it->second);
  return it->second;
}

void AddressSpace::insertObject(std::uint64_t id, Cells cells) {
  SDE_ASSERT(!objects_.contains(id), "insertObject over existing object");
  objects_.emplace(id, std::make_shared<Cells>(std::move(cells)));
}

void AddressSpace::removeObject(std::uint64_t id) {
  SDE_ASSERT(objects_.contains(id), "removeObject of unknown object");
  SDE_ASSERT(id != kGlobalsObject, "removeObject of the globals segment");
  objects_.erase(id);
}

void AddressSpace::store(std::uint64_t id, std::uint64_t index,
                         expr::Ref value) {
  auto& payload = mutableObject(id);
  SDE_ASSERT(index < payload->size(), "store out of bounds");
  (*payload)[index] = value;
}

AddressSpace::Cells AddressSpace::read(std::uint64_t id,
                                       std::uint64_t count) const {
  const auto it = objects_.find(id);
  SDE_ASSERT(it != objects_.end(), "read from unknown object");
  SDE_ASSERT(count <= it->second->size(), "read beyond object size");
  return Cells(it->second->begin(),
               it->second->begin() + static_cast<std::ptrdiff_t>(count));
}

std::uint64_t AddressSpace::contentHash() const {
  support::Hasher h;
  for (const auto& [id, payload] : objects_) {
    h.u64(id).u64(payload->size());
    for (expr::Ref cell : *payload) h.u64(cell->hash());
  }
  return h.digest();
}

std::uint64_t AddressSpace::accountBytes(
    std::map<const void*, std::uint64_t>& seen) const {
  std::uint64_t bytes = 0;
  for (const auto& [id, payload] : objects_) {
    const auto [it, inserted] =
        seen.emplace(payload.get(), payload->size() * sizeof(expr::Ref));
    if (inserted) bytes += it->second;
  }
  return bytes;
}

}  // namespace sde::vm
