// The symbolic interpreter: runs one event handler of one execution
// state to completion, forking at symbolic branches. Forked siblings
// finish the same handler within the same call (run-to-completion, like
// Contiki event handlers under KleeNet).
//
// The interpreter is policy-free: everything that concerns the
// *distributed* execution — which states receive a packet, who gets
// forked on a conflict — is delegated to the EffectSink, implemented by
// the SDE engine with a pluggable state-mapping algorithm.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "solver/client.hpp"
#include "support/stats.hpp"
#include "vm/dispatch.hpp"
#include "vm/merge.hpp"
#include "vm/postdom.hpp"
#include "vm/state.hpp"

namespace sde::vm {

class EffectSink {
 public:
  virtual ~EffectSink() = default;

  // A local symbolic branch: clone `original`, register the clone with
  // the run and notify the state-mapping algorithm. Must return the
  // clone (whose pc/constraints the interpreter then adjusts).
  virtual ExecutionState& forkState(ExecutionState& original) = 0;

  // `sender` transmitted a packet to node `dst`. The implementation
  // performs the state mapping and delivery scheduling.
  virtual void onSend(ExecutionState& sender, NodeId dst,
                      std::vector<expr::Ref> payload) = 0;

  // Merge mode: two sibling states met at a join point. The
  // implementation may ite-merge `absorbed` into `survivor` (marking
  // `absorbed` mergedAway and deferring its removal) and return true,
  // or decline. Default: merging disabled.
  virtual bool tryMerge(ExecutionState& survivor, ExecutionState& absorbed) {
    (void)survivor;
    (void)absorbed;
    return false;
  }

  // Diagnostics (optional).
  virtual void onLog(ExecutionState& state, std::string_view message,
                     expr::Ref value) {
    (void)state;
    (void)message;
    (void)value;
  }
};

struct InterpConfig {
  // Per-state fuel per event; exceeding it kills the state (catching
  // accidental infinite loops in node programs).
  std::uint64_t maxStepsPerEvent = 1u << 20;
  // Opt-in state merging: symbolic branches with an intra-handler join
  // point (post-dominator) park their siblings there and offer them to
  // EffectSink::tryMerge; merged states split back apart before any
  // concretization could observe a guard-dependent value. Set by the
  // engine from EngineConfig::mergeStates.
  bool mergeStates = false;
  // Dispatch strategy (vm/dispatch.hpp). kThreaded/kFused run non-merge
  // events through the pre-decoded computed-goto executor; kSwitch is
  // the per-step decode switch. Digest-invariant by construction: the
  // fuzz battery (tests/vm/dispatch_equivalence_fuzz_test.cpp) and the
  // verify.sh smoke stage compare all three. Merge-mode events always
  // take the switch path (its per-step merge-token checks do not fit a
  // straight-line loop), in every mode.
  DispatchMode dispatch = dispatchModeFromEnv();
  // Per-opcode self-time and adjacent-pair attribution (SDE_OPCODE_TIME).
  // Forces the switch path with a clock read around every instruction —
  // a profiling mode, not a production one. Execution *counts* are
  // always collected; only timing/pairs need this.
  bool opcodeTiming = opcodeTimingFromEnv();
};

// What one runEvent call did, summarised for the engine's bounded-loop
// summarizer: a timer handler whose effects are "clean" (no clock
// reads, sends, fresh symbolics or forks; exactly one constant-delay
// re-arm of the dispatched timer) is a candidate for summarised replay.
struct EventEffects {
  bool usedNow = false;
  std::uint32_t sends = 0;
  std::uint32_t symbolicsMinted = 0;
  std::uint32_t forks = 0;
  std::uint32_t timerOps = 0;
  bool rearmConstant = false;
  std::uint64_t rearmTimerId = 0;
  std::uint64_t rearmDelay = 0;
  std::uint64_t instructions = 0;
};

class Interpreter {
 public:
  Interpreter(expr::Context& ctx, solver::SolverClient& solver,
              InterpConfig config = {})
      : ctx_(ctx), solver_(solver), config_(config), merger_(ctx) {
    if (config_.opcodeTiming) pairCounts_.resize(kNumOps * kNumOps, 0);
  }

  // Dispatches `entry` on `state` with up to three argument words in
  // r0..r2 and runs it (plus any forked siblings) to completion. After
  // the call every involved state is kIdle or terminal.
  void runEvent(ExecutionState& state, Entry entry,
                std::span<const expr::Ref> args, EffectSink& sink);

  [[nodiscard]] const support::StatsRegistry& stats() const { return stats_; }
  // Mutable access for checkpoint restore (interpreter counters feed the
  // parallel runner's fingerprint digest, so they must round-trip).
  [[nodiscard]] support::StatsRegistry& stats() { return stats_; }

  // Network size reported by the kNumNodes intrinsic (set by the engine
  // before the first event is dispatched).
  void setNumNodes(std::uint32_t n) { numNodes_ = n; }

  // Concretises `value` under the state's constraints, pinning the state
  // to the chosen value. Exposed for the engine (e.g. symbolic packet
  // destinations).
  std::uint64_t concretize(ExecutionState& state, expr::Ref value);

  // Effects of the most recent runEvent call (loop-summarizer input).
  [[nodiscard]] const EventEffects& lastEventEffects() const {
    return effects_;
  }

  // --- Per-opcode histogram (obs::PhaseProfiler opcode section) ----------
  // Execution counts are always collected (one array increment per
  // instruction); self-time and adjacent-pair counts only under
  // InterpConfig::opcodeTiming. Entries are named "op.<name>" and
  // "pair.<a>+<b>" so they ride the trace profile section's name-keyed
  // format unchanged.
  struct OpcodeProfileEntry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t nanos = 0;
  };
  [[nodiscard]] std::vector<OpcodeProfileEntry> opcodeProfile() const;
  [[nodiscard]] const std::array<std::uint64_t, kNumOps>& opcodeCounts() const {
    return opCounts_;
  }

  [[nodiscard]] DispatchMode dispatchMode() const { return config_.dispatch; }

 private:
  // Executes one instruction; returns false when the handler finished
  // (by halt/return/failure/kill) for this state.
  bool step(ExecutionState& state, EffectSink& sink,
            std::vector<ExecutionState*>& worklist);
  // Threaded fast path: runs `state` to the end of the current handler
  // through the pre-decoded stream (computed-goto dispatch where the
  // compiler supports it). Only used for non-merge events in
  // kThreaded/kFused modes; behaviourally identical to the step() loop.
  void runDecoded(ExecutionState& state, const DecodedProgram& decoded,
                  EffectSink& sink, std::vector<ExecutionState*>& forked);
  // Decoded form of `program`, decoded once and shared by every state
  // (keyed by identity like the postdominator cache).
  [[nodiscard]] const DecodedProgram& decodedFor(const Program& program);

  expr::Ref reg(ExecutionState& state, std::uint8_t index) const;
  // The interned 64-bit zero, cached after first use (unwritten
  // registers read as zero; the baseline re-ran the interning lookup on
  // every such read). Lazily created so the interning-log position of
  // the node is identical to the uncached baseline's first use.
  expr::Ref zero64() const {
    return zero64_ != nullptr ? zero64_ : (zero64_ = ctx_.constant(0, 64));
  }
  void setReg(ExecutionState& state, std::uint8_t index, expr::Ref value);
  void kill(ExecutionState& state, std::string_view why);

  // --- State-merging support (all no-ops unless config_.mergeStates) ---
  [[nodiscard]] const PostDominators& postdomFor(const Program& program);
  // Bumps the live count of every merge token `child` inherited by fork.
  static void noteForkTokens(ExecutionState& child);
  // Does the next instruction concretize a guard-dependent operand?
  [[nodiscard]] bool needsGuardSplit(ExecutionState& state) const;
  // Splits the innermost merge guard back apart (forking if both
  // polarities are feasible) without executing the pending instruction.
  void splitLastGuard(ExecutionState& state, EffectSink& sink,
                      std::vector<ExecutionState*>& worklist);
  // `state` reached the join pc of its innermost token (already popped).
  // Merges with / parks against the token's waiters.
  enum class Arrival { kContinue, kParked, kAbsorbed, kYield };
  Arrival arriveAtJoin(ExecutionState& state,
                       const std::shared_ptr<ExecutionState::MergeToken>& token,
                       EffectSink& sink, std::deque<ExecutionState*>& runnable);
  // Drops every token `state` holds (it terminated, merged away, or is
  // about to emit a send). Parked waiters that can no longer merge are
  // released to the front of `runnable` in ascending-id (= unmerged
  // completion) order. Returns how many of them have lower ids than
  // `state`: a caller that keeps running must yield behind exactly
  // those (re-insert itself at that queue offset) to preserve unmerged
  // completion order; higher-id waiters queue after it either way.
  std::size_t releaseTokens(ExecutionState& state,
                            std::deque<ExecutionState*>& runnable);
  // Appends `token`'s parked waiters to `out` (un-parking them) if no
  // live runner can still arrive at its join.
  void collectReleasable(ExecutionState::MergeToken& token,
                         std::vector<ExecutionState*>& out);
  // collectReleasable + front-enqueue in ascending-id order.
  void maybeReleaseParked(ExecutionState::MergeToken& token,
                          std::deque<ExecutionState*>& runnable);

  expr::Context& ctx_;
  solver::SolverClient& solver_;
  InterpConfig config_;
  Merger merger_;
  std::uint32_t numNodes_ = 0;
  support::StatsRegistry stats_;
  EventEffects effects_;
  std::size_t parkedCount_ = 0;
  std::map<const Program*, PostDominators> postdomCache_;
  std::map<const Program*, DecodedProgram> decodedCache_;
  mutable expr::Ref zero64_ = nullptr;
  // Opcode histogram: counts always; nanos/pairs only under
  // config_.opcodeTiming (pairCounts_ is kNumOps*kNumOps, row-major by
  // first op, allocated lazily when timing is on).
  std::array<std::uint64_t, kNumOps> opCounts_{};
  std::array<std::uint64_t, kNumOps> opNanos_{};
  std::vector<std::uint64_t> pairCounts_;
  static constexpr std::uint16_t kNoPrevOp = 0xffff;
  std::uint16_t timingPrev_ = kNoPrevOp;
};

}  // namespace sde::vm
