// The symbolic interpreter: runs one event handler of one execution
// state to completion, forking at symbolic branches. Forked siblings
// finish the same handler within the same call (run-to-completion, like
// Contiki event handlers under KleeNet).
//
// The interpreter is policy-free: everything that concerns the
// *distributed* execution — which states receive a packet, who gets
// forked on a conflict — is delegated to the EffectSink, implemented by
// the SDE engine with a pluggable state-mapping algorithm.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "solver/client.hpp"
#include "support/stats.hpp"
#include "vm/state.hpp"

namespace sde::vm {

class EffectSink {
 public:
  virtual ~EffectSink() = default;

  // A local symbolic branch: clone `original`, register the clone with
  // the run and notify the state-mapping algorithm. Must return the
  // clone (whose pc/constraints the interpreter then adjusts).
  virtual ExecutionState& forkState(ExecutionState& original) = 0;

  // `sender` transmitted a packet to node `dst`. The implementation
  // performs the state mapping and delivery scheduling.
  virtual void onSend(ExecutionState& sender, NodeId dst,
                      std::vector<expr::Ref> payload) = 0;

  // Diagnostics (optional).
  virtual void onLog(ExecutionState& state, std::string_view message,
                     expr::Ref value) {
    (void)state;
    (void)message;
    (void)value;
  }
};

struct InterpConfig {
  // Per-state fuel per event; exceeding it kills the state (catching
  // accidental infinite loops in node programs).
  std::uint64_t maxStepsPerEvent = 1u << 20;
};

class Interpreter {
 public:
  Interpreter(expr::Context& ctx, solver::SolverClient& solver,
              InterpConfig config = {})
      : ctx_(ctx), solver_(solver), config_(config) {}

  // Dispatches `entry` on `state` with up to three argument words in
  // r0..r2 and runs it (plus any forked siblings) to completion. After
  // the call every involved state is kIdle or terminal.
  void runEvent(ExecutionState& state, Entry entry,
                std::span<const expr::Ref> args, EffectSink& sink);

  [[nodiscard]] const support::StatsRegistry& stats() const { return stats_; }
  // Mutable access for checkpoint restore (interpreter counters feed the
  // parallel runner's fingerprint digest, so they must round-trip).
  [[nodiscard]] support::StatsRegistry& stats() { return stats_; }

  // Network size reported by the kNumNodes intrinsic (set by the engine
  // before the first event is dispatched).
  void setNumNodes(std::uint32_t n) { numNodes_ = n; }

  // Concretises `value` under the state's constraints, pinning the state
  // to the chosen value. Exposed for the engine (e.g. symbolic packet
  // destinations).
  std::uint64_t concretize(ExecutionState& state, expr::Ref value);

 private:
  // Executes one instruction; returns false when the handler finished
  // (by halt/return/failure/kill) for this state.
  bool step(ExecutionState& state, EffectSink& sink,
            std::vector<ExecutionState*>& worklist);

  expr::Ref reg(ExecutionState& state, std::uint8_t index) const;
  void setReg(ExecutionState& state, std::uint8_t index, expr::Ref value);
  void kill(ExecutionState& state, std::string_view why);

  expr::Context& ctx_;
  solver::SolverClient& solver_;
  InterpConfig config_;
  std::uint32_t numNodes_ = 0;
  support::StatsRegistry stats_;
};

}  // namespace sde::vm
