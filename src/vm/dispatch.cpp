#include "vm/dispatch.hpp"

#include <cstdlib>

namespace sde::vm {

std::string_view dispatchModeName(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kSwitch:
      return "switch";
    case DispatchMode::kThreaded:
      return "threaded";
    case DispatchMode::kFused:
      return "fused";
  }
  return "?";
}

bool parseDispatchMode(std::string_view text, DispatchMode& out) {
  if (text == "switch") {
    out = DispatchMode::kSwitch;
    return true;
  }
  if (text == "threaded") {
    out = DispatchMode::kThreaded;
    return true;
  }
  if (text == "fused") {
    out = DispatchMode::kFused;
    return true;
  }
  return false;
}

DispatchMode dispatchModeFromEnv() {
  static const DispatchMode cached = [] {
    if (const char* named = std::getenv("SDE_DISPATCH")) {
      DispatchMode mode{};
      if (parseDispatchMode(named, mode)) return mode;
    }
    if (const char* toggle = std::getenv("SDE_THREADED_DISPATCH"))
      return std::atoi(toggle) == 0 ? DispatchMode::kSwitch
                                    : DispatchMode::kFused;
    return DispatchMode::kFused;
  }();
  return cached;
}

bool opcodeTimingFromEnv() {
  static const bool cached = [] {
    const char* v = std::getenv("SDE_OPCODE_TIME");
    return v != nullptr && std::atoi(v) != 0;
  }();
  return cached;
}

std::uint16_t fusedHandlerFor(Op first, Op second) {
  // Selection is data-driven: these are the dominant adjacent pairs in
  // the SDE_OPCODE_TIME pair histogram over the rime workloads (see
  // EXPERIMENTS.md E23). Structural constraints: the first op must fall
  // through unconditionally (no control flow, no suspension point, no
  // sink callback), so only straight-line producers fuse.
  if (isBinaryAlu(first) && second == Op::kBr) return kHandlerAluBr;
  if (first == Op::kConst && isBinaryAlu(second)) return kHandlerConstAlu;
  if (first == Op::kLoadG && second == Op::kBr) return kHandlerLoadGBr;
  if (first == Op::kConst && second == Op::kStoreG) return kHandlerConstStoreG;
  if (first == Op::kMov && second == Op::kBr) return kHandlerMovBr;
  return 0;
}

std::string_view handlerName(std::uint16_t handler) {
  if (handler < kNumOps) return opName(static_cast<Op>(handler));
  switch (handler) {
    case kHandlerAluBr:
      return "alu+br";
    case kHandlerConstAlu:
      return "const+alu";
    case kHandlerLoadGBr:
      return "loadg+br";
    case kHandlerConstStoreG:
      return "const+storeg";
    case kHandlerMovBr:
      return "mov+br";
    default:
      return "?";
  }
}

namespace {

void validateInstr(const Program& program, std::size_t pc, const Instr& ins) {
  const std::size_t size = program.size();
  const auto validReg = [](std::uint8_t r) { return r < kNumRegisters; };
  const auto validTarget = [size](std::int64_t t) {
    return t >= 0 && static_cast<std::size_t>(t) < size;
  };
  (void)pc;
  switch (ins.op) {
    case Op::kJmp:
      SDE_ASSERT(validTarget(ins.imm), "jump target out of range");
      break;
    case Op::kBr:
      SDE_ASSERT(validReg(ins.a), "register out of range");
      SDE_ASSERT(validTarget(ins.imm) && validTarget(ins.imm2),
                 "branch target out of range");
      break;
    case Op::kCall:
      // The return pc (pc+1) is NOT validated here: a trailing call
      // whose callee never returns is legal, and the sentinel slot
      // asserts at runtime exactly like the baseline fetch would.
      SDE_ASSERT(validTarget(ins.imm), "call target out of range");
      break;
    case Op::kSymbolic:
      SDE_ASSERT(validReg(ins.a), "register out of range");
      SDE_ASSERT(ins.imm >= 1 && ins.imm <= 64, "symbolic width out of range");
      break;
    case Op::kNop:
    case Op::kRet:
    case Op::kHalt:
    case Op::kFail:
    case Op::kStopTimer:
      break;
    default:
      // Every remaining op names up to three registers; unused fields
      // are zero-initialised by IRBuilder, so checking all three is both
      // safe and exhaustive.
      SDE_ASSERT(validReg(ins.a) && validReg(ins.b) && validReg(ins.c),
                 "register out of range");
      break;
  }
}

}  // namespace

DecodedProgram::DecodedProgram(const Program& program, bool fuse) {
  const std::size_t size = program.size();
  code_.resize(size + 1);
  for (std::size_t pc = 0; pc < size; ++pc) {
    const Instr& ins = program.at(pc);
    validateInstr(program, pc, ins);
    DecodedInstr& d = code_[pc];
    d.op = ins.op;
    d.handler = static_cast<std::uint16_t>(ins.op);
    d.a = ins.a;
    d.b = ins.b;
    d.c = ins.c;
    d.imm = ins.imm;
    d.imm2 = ins.imm2;
    d.str = ins.str;
  }
  if (fuse) {
    for (std::size_t pc = 0; pc + 1 < size; ++pc) {
      const std::uint16_t fused =
          fusedHandlerFor(code_[pc].op, code_[pc + 1].op);
      if (fused != 0) {
        code_[pc].handler = fused;
        ++fusedSlots_;
      }
    }
  }
  // Sentinel: running off the end of the program is a bug in the node
  // program; the baseline Program::at() asserts, so does this handler.
  code_[size].op = Op::kNop;
  code_[size].handler = kHandlerOutOfRange;
}

}  // namespace sde::vm
