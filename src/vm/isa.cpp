#include "vm/isa.hpp"

namespace sde::vm {

std::string_view opName(Op op) {
  switch (op) {
    case Op::kNop:
      return "nop";
    case Op::kConst:
      return "const";
    case Op::kMov:
      return "mov";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kUDiv:
      return "udiv";
    case Op::kURem:
      return "urem";
    case Op::kSDiv:
      return "sdiv";
    case Op::kSRem:
      return "srem";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
    case Op::kXor:
      return "xor";
    case Op::kShl:
      return "shl";
    case Op::kLShr:
      return "lshr";
    case Op::kAShr:
      return "ashr";
    case Op::kNot:
      return "not";
    case Op::kEq:
      return "eq";
    case Op::kNe:
      return "ne";
    case Op::kUlt:
      return "ult";
    case Op::kUle:
      return "ule";
    case Op::kSlt:
      return "slt";
    case Op::kSle:
      return "sle";
    case Op::kJmp:
      return "jmp";
    case Op::kBr:
      return "br";
    case Op::kCall:
      return "call";
    case Op::kRet:
      return "ret";
    case Op::kHalt:
      return "halt";
    case Op::kFail:
      return "fail";
    case Op::kAlloc:
      return "alloc";
    case Op::kLoad:
      return "load";
    case Op::kStore:
      return "store";
    case Op::kLoadG:
      return "loadg";
    case Op::kStoreG:
      return "storeg";
    case Op::kSymbolic:
      return "symbolic";
    case Op::kAssume:
      return "assume";
    case Op::kSend:
      return "send";
    case Op::kSetTimer:
      return "settimer";
    case Op::kStopTimer:
      return "stoptimer";
    case Op::kSelf:
      return "self";
    case Op::kNow:
      return "now";
    case Op::kNumNodes:
      return "numnodes";
    case Op::kLog:
      return "log";
  }
  return "?";
}

bool isBinaryAlu(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kUDiv:
    case Op::kURem:
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kLShr:
    case Op::kAShr:
    case Op::kEq:
    case Op::kNe:
    case Op::kUlt:
    case Op::kUle:
    case Op::kSlt:
    case Op::kSle:
      return true;
    default:
      return false;
  }
}

}  // namespace sde::vm
