// Ite-merging of sibling execution states, and the exact inverse.
//
// Two states that agree on everything an event handler cannot compute
// over — node, program, event queue, communication history, symbolic
// inputs — differ only in registers, memory cells, path-constraint
// suffixes and decision tails. Merging replaces those differences with
// ite(g, survivor, absorbed) terms under a fresh boolean guard g and
// records a MergeGuard side table precise enough to *undo* the merge:
// splitting on g = v (or enumerating both assignments at test-case
// generation) reproduces, item for item and cell for cell, the state an
// unmerged run would hold. That exactness is what the differential
// merge oracle certifies.
//
// The Merger is policy-free: callers (the engine sweep, the
// interpreter's join-point parking) decide *when* to merge; this module
// decides *whether it can* and performs the algebra.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "expr/context.hpp"
#include "expr/subst.hpp"
#include "vm/state.hpp"

namespace sde::vm {

struct MergeLimits {
  // Merges rewriting more than this many register/memory cells are
  // declined: past some width the ite terms cost more than the saved
  // state. Declining is always safe (the states simply stay separate).
  std::size_t maxDifferingCells = 64;
};

class Merger {
 public:
  explicit Merger(expr::Context& ctx, MergeLimits limits = {})
      : ctx_(ctx), limits_(limits) {}

  // Engine-level compatibility of two sibling states: same node and
  // program, both idle (or both running at the same pc/call stack, the
  // parking case), identical event queues, timers, communication
  // histories, symbolic-input lists and failure status, and memory
  // object tables that differ at most by one-sided (phantom) objects.
  // Registers, memory cell values, constraint suffixes and decision
  // tails may differ — that is what the merge absorbs.
  [[nodiscard]] bool compatible(const ExecutionState& a,
                                const ExecutionState& b) const;

  // Merges `absorbed` into `survivor` under the fresh width-1 guard
  // variable `guard` (true selects the survivor arm). Requires
  // compatible(). Returns false — leaving both states untouched — when
  // the constraint algebra or the differing-cell cap declines.
  bool merge(ExecutionState& survivor, ExecutionState& absorbed,
             expr::Ref guard);

  // Which polarities of `state`'s innermost (last) merge guard are
  // syntactically feasible: substituting the guard may fold a
  // post-merge constraint item to constant false, meaning that arm of
  // this particular state was never explored unmerged (a sibling fork
  // covers the assignment). first = guard true, second = guard false.
  [[nodiscard]] std::pair<bool, bool> feasiblePolarities(
      const ExecutionState& state) const;

  // Rewrites `state` in place onto the `value` polarity of its
  // innermost merge guard: splices the matching constraint suffix back
  // in place of the merge conjunct, substitutes the guard constant
  // through registers and memory (the Context builders re-fold the ite
  // terms away), drops the other arm's phantom objects and decision
  // tail, and restores the arm's own merge table. The polarity must be
  // feasible per feasiblePolarities().
  void applyLastGuard(ExecutionState& state, bool value);

 private:
  expr::Context& ctx_;
  MergeLimits limits_;
};

// Test-case expansion over merged states: a merged state stands for
// 2^guards unmerged states, so test-case generation enumerates every
// guard assignment and reconstructs, per member state, the exact
// constraint item list the unmerged run would have held under that
// assignment (arm suffixes spliced back in place of the merge
// conjuncts, the guard constants folded through every other item).
class MergeExpansion {
 public:
  explicit MergeExpansion(expr::Context& ctx) : ctx_(ctx) {}

  // Registers a member state's merge table (recursively, including the
  // per-arm sub-tables). Call once per scenario member; guards
  // accumulate in registration order.
  void addState(const ExecutionState& state);

  // Every guard registered, in deterministic registration order. Empty
  // means no member merged — expansion degenerates to the identity.
  [[nodiscard]] const std::vector<expr::Ref>& guards() const {
    return guards_;
  }

  // Reconstructs `state`'s unmerged constraint items under `assignment`
  // (indexed like guards()) into `out`, in unmerged insertion order and
  // with constant-true items dropped — exactly the sequence add() saw
  // on the unmerged path. Returns false when an item folds to constant
  // false: this fork child does not represent that assignment (a
  // sibling fork covers it, so the variant must be skipped, not
  // reported unsatisfiable).
  [[nodiscard]] bool expandItems(const ExecutionState& state,
                                 const std::vector<bool>& assignment,
                                 std::vector<expr::Ref>& out) const;

 private:
  bool expandItem(expr::Ref item, expr::Substitution& subst,
                  const std::vector<bool>& assignment,
                  std::vector<expr::Ref>& out) const;
  void addTable(const std::vector<MergeGuard>& table);

  expr::Context& ctx_;
  std::vector<expr::Ref> guards_;
  std::map<expr::Ref, std::size_t> guardIndex_;
  std::map<expr::Ref, const MergeGuard*> byConjunct_;
};

}  // namespace sde::vm
