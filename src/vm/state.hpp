// One symbolic execution state of one node. This is the object the
// paper's state-mapping algorithms shuffle around: it forks at symbolic
// branches (locally) and when a mapping algorithm resolves a
// communication conflict (remotely), and it carries the communication
// history used to define conflicts (paper §II-B).
//
// Forking is O(1) in the size of every append-only component: the
// constraint set, communication history, decision log and symbolic-input
// list live in persistent chunked sequences (support::PVector) whose
// sealed chunks are shared between parent and child, and the pending
// event queue is shared whole-sale copy-on-write (support::CowVec).
// The fingerprints over those histories are maintained incrementally on
// append, so configHash never rewalks them either.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solver/constraint_set.hpp"
#include "support/hash.hpp"
#include "support/pvector.hpp"
#include "vm/memory.hpp"
#include "vm/program.hpp"

namespace sde::vm {

using NodeId = std::uint32_t;
using StateId = std::uint64_t;

enum class StateStatus : std::uint8_t {
  kIdle,        // between events, schedulable
  kRunning,     // currently inside a handler (transient)
  kFailed,      // assertion failure (kept for test-case generation)
  kInfeasible,  // an Assume contradicted the path constraints
  kKilled,      // resource limit or VM error
};

[[nodiscard]] std::string_view stateStatusName(StateStatus status);

// Engine-level event kinds carried by pending events. Declared here (not
// in sde::os) so that ExecutionState can own its pending-event queue; the
// os layer builds on the same enum.
enum class EventKind : std::uint8_t {
  kBoot = 0,   // dispatches Entry::kInit
  kTimer = 1,  // a = timer id; dispatches Entry::kTimer
  kRecv = 2,   // a = source node, payload = packet cells;
               //  dispatches Entry::kRecv
};

struct PendingEvent {
  std::uint64_t time = 0;  // absolute virtual time
  EventKind kind = EventKind::kBoot;
  std::uint64_t a = 0;
  // Run-global packet id for kRecv events (used by conflict detection;
  // excluded from contentHash because ids number packets per run and
  // differ across mapping algorithms).
  std::uint64_t b = 0;
  std::vector<expr::Ref> payload;
  std::uint64_t seq = 0;  // per-state arming order; deterministic tie-break

  // Hash excluding `seq` (which encodes arming order, already implied by
  // time ordering) — used in the state configuration fingerprint.
  [[nodiscard]] std::uint64_t contentHash() const;
};

// One entry of the communication history h(s) (paper §II-B). The paper
// notes the history need not be stored; we store it because the test
// suite uses it to verify conflict-freeness of every dstate.
struct CommRecord {
  bool sent = false;        // true: we transmitted; false: we received
  NodeId peer = 0;          // destination (sent) or source (received)
  std::uint64_t time = 0;   // virtual time of the transmission
  std::uint64_t payloadHash = 0;
  std::uint64_t packetId = 0;  // unique per transmitted packet in a run
};

// The communication history: append-only, chunk-shared across forks,
// with two incrementally-chained fingerprints — the packet-id-free
// content view (direction, peer, time, payload) feeding configHash, and
// the packet-identity chain feeding configHashStrict. Appending updates
// both in O(1); copying shares all sealed chunks.
class CommLog {
 public:
  using Records = support::PVector<CommRecord>;
  using const_iterator = Records::const_iterator;

  void push_back(const CommRecord& rec) {
    contentChain_ = support::hashCombine(contentChain_, rec.sent ? 1 : 0);
    contentChain_ = support::hashCombine(contentChain_, rec.peer);
    contentChain_ = support::hashCombine(contentChain_, rec.time);
    contentChain_ = support::hashCombine(contentChain_, rec.payloadHash);
    strictChain_ = support::hashCombine(strictChain_, rec.packetId);
    records_.push_back(rec);
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const CommRecord& operator[](std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] const CommRecord& back() const { return records_.back(); }
  [[nodiscard]] const_iterator begin() const { return records_.begin(); }
  [[nodiscard]] const_iterator end() const { return records_.end(); }

  [[nodiscard]] std::uint64_t contentChainHash() const { return contentChain_; }
  [[nodiscard]] std::uint64_t strictChainHash() const { return strictChain_; }

  [[nodiscard]] std::uint64_t copyCostElements() const {
    return records_.copyCostElements();
  }
  [[nodiscard]] std::uint64_t sharedChunksOnCopy() const {
    return records_.sharedChunksOnCopy();
  }
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen) const {
    return records_.accountBytes(seen);
  }

  // --- Snapshot support -------------------------------------------------------
  [[nodiscard]] const Records& records() const { return records_; }
  void restoreSnapshot(Records records);

 private:
  Records records_;
  std::uint64_t contentChain_ = 0;
  std::uint64_t strictChain_ = 0;
};

// The pending-event queue. Not append-only — the scheduler erases from
// the middle, timers re-arm via eraseIf, reboot clears — so it shares
// its storage whole-sale copy-on-write instead of chunk-wise. The
// configuration fingerprints are *additive multiset hashes* (sum of
// mixed per-item hashes mod 2^64): commutative so removal subtracts in
// O(payload), and duplicates accumulate instead of cancelling as an XOR
// multiset would.
class EventQueue {
 public:
  using Events = support::CowVec<PendingEvent>;
  using const_iterator = Events::const_iterator;

  void push_back(PendingEvent event) {
    noteInsert(event);
    events_.push_back(std::move(event));
  }
  void pop_back() {
    noteErase(events_.back());
    events_.pop_back();
  }
  void clear() {
    events_.clear();
    contentMultiset_ = 0;
    strictRecvMultiset_ = 0;
  }
  void erase(const_iterator pos) {
    noteErase(*pos);
    events_.erase(pos);
  }
  // Removes events matching `pred` (must be pure; may run repeatedly).
  template <typename Pred>
  std::size_t eraseIf(Pred pred) {
    for (const PendingEvent& event : events_)
      if (pred(event)) noteErase(event);
    return events_.eraseIf(pred);
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const PendingEvent& operator[](std::size_t i) const {
    return events_[i];
  }
  [[nodiscard]] const PendingEvent& back() const { return events_.back(); }
  [[nodiscard]] const_iterator begin() const { return events_.begin(); }
  [[nodiscard]] const_iterator end() const { return events_.end(); }

  // Order-independent fingerprint of the queued events' contentHash()es.
  [[nodiscard]] std::uint64_t contentHash() const { return contentMultiset_; }
  // Multiset of packet ids over queued kRecv events (strict view).
  [[nodiscard]] std::uint64_t strictRecvHash() const {
    return strictRecvMultiset_;
  }

  [[nodiscard]] std::uint64_t copyCostElements() const {
    return events_.copyCostElements();
  }
  [[nodiscard]] std::uint64_t sharedChunksOnCopy() const {
    return events_.sharedChunksOnCopy();
  }
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen) const;

  // --- Snapshot support -------------------------------------------------------
  [[nodiscard]] const Events& events() const { return events_; }
  void restoreSnapshot(Events events);

 private:
  void noteInsert(const PendingEvent& event) {
    contentMultiset_ += support::mix64(event.contentHash());
    if (event.kind == EventKind::kRecv)
      strictRecvMultiset_ += support::mix64(event.b);
  }
  void noteErase(const PendingEvent& event) {
    contentMultiset_ -= support::mix64(event.contentHash());
    if (event.kind == EventKind::kRecv)
      strictRecvMultiset_ -= support::mix64(event.b);
  }

  Events events_;
  std::uint64_t contentMultiset_ = 0;
  std::uint64_t strictRecvMultiset_ = 0;
};

// One engine-level failure decision taken on a path (see
// ExecutionState::decisions below for the replay semantics).
struct DecisionRecord {
  expr::Ref var = nullptr;  // the symbolic decision variable
  bool failed = false;      // branch taken: true = the failure branch
};

// Side table of one state merge this state survived (opt-in merging
// mode). The merge minted the fresh boolean guard variable `guard`
// ("mrg.N", true selects the survivor arm), replaced every differing
// register/memory cell with ite(guard, survivorVal, absorbedVal), and
// replaced the two arms' constraint suffixes with the single item
// `conjunct` == ite(guard, And(ifTrue), And(ifFalse)). The suffixes and
// the arms' decision-record tails are kept verbatim so the merge can be
// *undone exactly*: splitting on guard=v splices the matching suffix
// back in place of `conjunct` (and test-case expansion enumerates both
// assignments), reproducing the very states an unmerged run builds.
struct MergeGuard {
  expr::Ref guard = nullptr;     // width-1 variable; true => survivor arm
  expr::Ref conjunct = nullptr;  // the merged constraint item; nullptr
                                 //  when both suffixes were empty
  std::vector<expr::Ref> ifTrue;    // survivor-arm constraint suffix
  std::vector<expr::Ref> ifFalse;   // absorbed-arm constraint suffix
  std::vector<DecisionRecord> decTrue;   // survivor-arm decision tail
  std::vector<DecisionRecord> decFalse;  // absorbed-arm decision tail
  // Index into the merged decisions list where decTrue begins (== the
  // two arms' common decision prefix length at merge time); decFalse
  // follows immediately. Post-merge appends land after both, so the
  // ranges stay valid for a later split.
  std::size_t decSplit = 0;
  // The arms' own merge entries beyond their common prefix: a survivor
  // that had merged before contributes its extra entries to subTrue,
  // the absorbed arm's to subFalse. A split re-appends the matching
  // list, restoring exactly the arm's pre-merge table.
  std::vector<MergeGuard> subTrue;
  std::vector<MergeGuard> subFalse;
  // Memory objects present in exactly one arm (phantom objects, e.g.
  // the delivered-payload buffer the dropped arm never allocated). The
  // merged space holds ite(guard, cells, 0...) for them; a split on the
  // losing polarity removes them again.
  std::vector<std::uint64_t> objsTrueOnly;
  std::vector<std::uint64_t> objsFalseOnly;
};

class ExecutionState {
 public:
  ExecutionState(StateId id, NodeId node, const Program& program)
      : id_(id), node_(node), program_(&program) {
    regs_.fill(nullptr);
  }

  // Forks this state: the clone shares memory payloads copy-on-write,
  // shares every sealed chunk of the append-only histories, and copies
  // only registers, scalars and sequence tails — O(1) in history sizes.
  // The caller (engine) assigns the new id.
  [[nodiscard]] std::unique_ptr<ExecutionState> fork(StateId newId) const;

  // --- Identity ------------------------------------------------------------
  [[nodiscard]] StateId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const Program& program() const { return *program_; }

  // --- Execution context ----------------------------------------------------
  std::array<expr::Ref, kNumRegisters> regs_;
  std::size_t pc = 0;
  std::vector<std::size_t> callStack;
  AddressSpace space;
  solver::ConstraintSet constraints;
  StateStatus status = StateStatus::kIdle;
  std::uint64_t clock = 0;  // local virtual time (last dispatched event)
  std::string failureMessage;

  // --- Event queue -----------------------------------------------------------
  EventQueue pendingEvents;
  std::uint64_t nextEventSeq = 0;
  // Active timers: timer id -> seq of the arming (re-arming supersedes).
  std::map<std::uint32_t, std::uint64_t> activeTimers;

  // One engine-level failure decision taken on this path, in decision
  // order — the deterministic-replay log. Re-running the engine with all
  // of these decisions forced (Engine decision filter) reproduces this
  // state's distributed scenario without exploring the rest of the tree;
  // the parallel runner uses the log to assign each explored dscenario
  // to exactly one partition job.
  using DecisionRecord = sde::vm::DecisionRecord;

  // --- SDE bookkeeping --------------------------------------------------------
  CommLog commLog;
  support::PVector<DecisionRecord> decisions;
  // Distinct symbolic inputs created on this path, in creation order
  // (the test case of this state assigns each of them).
  support::PVector<expr::Ref> symbolics;
  // Per-label counters making symbolic input names deterministic and
  // node-local: "n<node>.<label>.<k>".
  std::map<std::string, std::uint32_t> symbolicCounters;

  // Number of VM instructions this state has executed (#(s) in the
  // paper's complexity analysis).
  std::uint64_t executedInstructions = 0;

  // --- State merging (opt-in) -------------------------------------------------
  // Side tables of the merges this state survived, in merge order
  // (outermost first). Serialized in checkpoint v5; empty when merging
  // is off.
  std::vector<MergeGuard> mergeGuards;

  // Intra-handler parking (merge mode): a symbolic branch whose join
  // point is known pushes one shared token on both siblings; a state
  // reaching joinPc at the recorded call depth parks there until the
  // sibling arrives (ite-merge) or can no longer arrive (release).
  // `live` counts the states still holding or parked on the token.
  // Transient: only meaningful while kRunning inside one runEvent call,
  // never serialized (checkpoints fire between events, when all stacks
  // are empty).
  struct MergeToken {
    std::size_t joinPc = 0;
    std::size_t depth = 0;  // callStack depth at the fork
    int live = 0;
    std::vector<ExecutionState*> parked;
  };
  std::vector<std::shared_ptr<MergeToken>> mergeTokens;  // innermost last

  // Set when this state was absorbed into a sibling mid-event; the
  // engine reaps flagged states at the end of the event. Transient.
  bool mergedAway = false;

  // --- Fork cost / memory accounting -----------------------------------------
  // Elements fork() deep-copies right now across all shared-capable
  // components (sequence tails in persistent mode; full histories in the
  // legacy deep-copy mode). A pure structural function of this state —
  // deterministic across runs and worker counts, unlike the process-wide
  // support::persistStats() counters.
  [[nodiscard]] std::uint64_t forkCopyCost() const;
  // Storage blocks fork() shares instead of copying (sealed chunks +
  // the CoW event queue payload).
  [[nodiscard]] std::uint64_t forkSharedChunks() const;
  // Bytes attributable to this state, charging each shared block
  // (memory-object payloads, sealed history chunks, the event-queue
  // payload) only on first encounter in `seen` — the all-component
  // extension of AddressSpace::accountBytes.
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen) const;

  // --- Fingerprints -------------------------------------------------------------
  // Configuration hash over node id, program counter, registers, memory,
  // path constraints, pending events, clock and the packet-id-free view
  // of the communication history. Stable across runs and across mapping
  // algorithms — the cross-algorithm equivalence oracle. Because it
  // ignores packet identity, equal-content packets from rival senders
  // make states compare equal: this measures the *semantic* duplicates
  // the paper's §III-D content-analysis optimisation could remove.
  // Combines the incrementally-maintained component fingerprints: O(1)
  // in the history sizes.
  [[nodiscard]] std::uint64_t configHash() const;

  // Like configHash but distinguishing packets by identity, matching the
  // paper's formal model where "all packets ... are assumed to be unique
  // and distinguishable" (§II-B). This is the duplicate notion of the
  // §III-D non-duplication theorem: SDS never produces two states with
  // equal strict configuration. Only comparable within one run.
  [[nodiscard]] std::uint64_t configHashStrict() const;

  [[nodiscard]] bool isTerminal() const {
    return status == StateStatus::kFailed ||
           status == StateStatus::kInfeasible ||
           status == StateStatus::kKilled;
  }

 private:
  StateId id_;
  NodeId node_;
  const Program* program_;
};

}  // namespace sde::vm
