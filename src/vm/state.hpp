// One symbolic execution state of one node. This is the object the
// paper's state-mapping algorithms shuffle around: it forks at symbolic
// branches (locally) and when a mapping algorithm resolves a
// communication conflict (remotely), and it carries the communication
// history used to define conflicts (paper §II-B).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solver/constraint_set.hpp"
#include "vm/memory.hpp"
#include "vm/program.hpp"

namespace sde::vm {

using NodeId = std::uint32_t;
using StateId = std::uint64_t;

enum class StateStatus : std::uint8_t {
  kIdle,        // between events, schedulable
  kRunning,     // currently inside a handler (transient)
  kFailed,      // assertion failure (kept for test-case generation)
  kInfeasible,  // an Assume contradicted the path constraints
  kKilled,      // resource limit or VM error
};

[[nodiscard]] std::string_view stateStatusName(StateStatus status);

// Engine-level event kinds carried by pending events. Declared here (not
// in sde::os) so that ExecutionState can own its pending-event queue; the
// os layer builds on the same enum.
enum class EventKind : std::uint8_t {
  kBoot = 0,   // dispatches Entry::kInit
  kTimer = 1,  // a = timer id; dispatches Entry::kTimer
  kRecv = 2,   // a = source node, payload = packet cells;
               //  dispatches Entry::kRecv
};

struct PendingEvent {
  std::uint64_t time = 0;  // absolute virtual time
  EventKind kind = EventKind::kBoot;
  std::uint64_t a = 0;
  // Run-global packet id for kRecv events (used by conflict detection;
  // excluded from contentHash because ids number packets per run and
  // differ across mapping algorithms).
  std::uint64_t b = 0;
  std::vector<expr::Ref> payload;
  std::uint64_t seq = 0;  // per-state arming order; deterministic tie-break

  // Hash excluding `seq` (which encodes arming order, already implied by
  // time ordering) — used in the state configuration fingerprint.
  [[nodiscard]] std::uint64_t contentHash() const;
};

// One entry of the communication history h(s) (paper §II-B). The paper
// notes the history need not be stored; we store it because the test
// suite uses it to verify conflict-freeness of every dstate.
struct CommRecord {
  bool sent = false;        // true: we transmitted; false: we received
  NodeId peer = 0;          // destination (sent) or source (received)
  std::uint64_t time = 0;   // virtual time of the transmission
  std::uint64_t payloadHash = 0;
  std::uint64_t packetId = 0;  // unique per transmitted packet in a run
};

class ExecutionState {
 public:
  ExecutionState(StateId id, NodeId node, const Program& program)
      : id_(id), node_(node), program_(&program) {
    regs_.fill(nullptr);
  }

  // Forks this state: the clone shares memory payloads copy-on-write and
  // copies everything else. The caller (engine) assigns the new id.
  [[nodiscard]] std::unique_ptr<ExecutionState> fork(StateId newId) const;

  // --- Identity ------------------------------------------------------------
  [[nodiscard]] StateId id() const { return id_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const Program& program() const { return *program_; }

  // --- Execution context ----------------------------------------------------
  std::array<expr::Ref, kNumRegisters> regs_;
  std::size_t pc = 0;
  std::vector<std::size_t> callStack;
  AddressSpace space;
  solver::ConstraintSet constraints;
  StateStatus status = StateStatus::kIdle;
  std::uint64_t clock = 0;  // local virtual time (last dispatched event)
  std::string failureMessage;

  // --- Event queue -----------------------------------------------------------
  std::vector<PendingEvent> pendingEvents;
  std::uint64_t nextEventSeq = 0;
  // Active timers: timer id -> seq of the arming (re-arming supersedes).
  std::map<std::uint32_t, std::uint64_t> activeTimers;

  // One engine-level failure decision taken on this path, in decision
  // order — the deterministic-replay log. Re-running the engine with all
  // of these decisions forced (Engine decision filter) reproduces this
  // state's distributed scenario without exploring the rest of the tree;
  // the parallel runner uses the log to assign each explored dscenario
  // to exactly one partition job.
  struct DecisionRecord {
    expr::Ref var = nullptr;  // the symbolic decision variable
    bool failed = false;      // branch taken: true = the failure branch
  };

  // --- SDE bookkeeping --------------------------------------------------------
  std::vector<CommRecord> commLog;
  std::vector<DecisionRecord> decisions;
  // Distinct symbolic inputs created on this path, in creation order
  // (the test case of this state assigns each of them).
  std::vector<expr::Ref> symbolics;
  // Per-label counters making symbolic input names deterministic and
  // node-local: "n<node>.<label>.<k>".
  std::map<std::string, std::uint32_t> symbolicCounters;

  // Number of VM instructions this state has executed (#(s) in the
  // paper's complexity analysis).
  std::uint64_t executedInstructions = 0;

  // --- Fingerprints -------------------------------------------------------------
  // Configuration hash over node id, program counter, registers, memory,
  // path constraints, pending events, clock and the packet-id-free view
  // of the communication history. Stable across runs and across mapping
  // algorithms — the cross-algorithm equivalence oracle. Because it
  // ignores packet identity, equal-content packets from rival senders
  // make states compare equal: this measures the *semantic* duplicates
  // the paper's §III-D content-analysis optimisation could remove.
  [[nodiscard]] std::uint64_t configHash() const;

  // Like configHash but distinguishing packets by identity, matching the
  // paper's formal model where "all packets ... are assumed to be unique
  // and distinguishable" (§II-B). This is the duplicate notion of the
  // §III-D non-duplication theorem: SDS never produces two states with
  // equal strict configuration. Only comparable within one run.
  [[nodiscard]] std::uint64_t configHashStrict() const;

  [[nodiscard]] bool isTerminal() const {
    return status == StateStatus::kFailed ||
           status == StateStatus::kInfeasible ||
           status == StateStatus::kKilled;
  }

 private:
  StateId id_;
  NodeId node_;
  const Program* program_;
};

}  // namespace sde::vm
