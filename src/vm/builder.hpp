// Fluent assembler for node programs. The rime layer and the examples
// author all node software through this interface; it owns label fixups,
// the string table, and a tiny amount of structured-control sugar so
// handler code stays readable.
//
// Register discipline (see isa.hpp): applications use r0..r15, library
// routines emitted by sde::rime use r16..r31. The builder does not
// allocate registers; callers pass explicit Reg values.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vm/program.hpp"

namespace sde::vm {

// A thin wrapper to keep register operands distinct from immediates at
// call sites (IRBuilder-heavy code is otherwise easy to get wrong).
struct Reg {
  std::uint8_t index = 0;
  constexpr explicit Reg(unsigned i) : index(static_cast<std::uint8_t>(i)) {
    // SDE_ASSERT is unusable in constexpr; range-checked on emission.
  }
};

class IRBuilder {
 public:
  explicit IRBuilder(std::string name);

  // --- Program layout ------------------------------------------------------
  // Reserves the node-global segment (object 0), in cells.
  void setGlobals(std::uint64_t cells) { program_.globalsSize_ = cells; }
  // Declares the next emitted instruction as the handler for `entry`.
  void beginEntry(Entry entry);

  class Label {
   public:
    Label() = default;

   private:
    friend class IRBuilder;
    explicit Label(std::uint32_t id) : id_(id), valid_(true) {}
    std::uint32_t id_ = 0;
    bool valid_ = false;
  };

  [[nodiscard]] Label newLabel();
  void bind(Label label);

  // --- Straight-line code --------------------------------------------------
  void constant(Reg rd, std::int64_t value);
  void mov(Reg rd, Reg rs);
  void alu(Op op, Reg rd, Reg ra, Reg rb);
  // Convenience ALU-with-immediate (emits a Const into `scratch`).
  void aluImm(Op op, Reg rd, Reg ra, std::int64_t imm, Reg scratch);
  void bvNot(Reg rd, Reg rs);

  // --- Control flow --------------------------------------------------------
  void jump(Label target);
  void branch(Reg cond, Label ifTrue, Label ifFalse);
  // Structured helpers: branch to `ifFalse` when cond is zero, falling
  // through otherwise (the most common shape in handler code).
  void branchIfZero(Reg cond, Label ifFalse);
  void branchIfNonZero(Reg cond, Label ifTrue);
  void call(std::string_view function);
  void ret();
  void halt();
  void fail(std::string_view message);

  // Function definition: binds `name` to the next pc (invoked via call).
  void beginFunction(std::string_view name);

  // --- Memory --------------------------------------------------------------
  void alloc(Reg rd, Reg sizeCells);
  void load(Reg rd, Reg obj, Reg index);
  void store(Reg src, Reg obj, Reg index);
  void loadGlobal(Reg rd, std::uint64_t index);
  void storeGlobal(Reg src, std::uint64_t index);

  // --- Intrinsics ----------------------------------------------------------
  void makeSymbolic(Reg rd, std::string_view label, unsigned widthBits);
  void assume(Reg cond);
  void send(Reg dstNode, Reg payloadObj, Reg lengthCells);
  void setTimer(std::uint32_t timerId, Reg delay);
  void stopTimer(std::uint32_t timerId);
  void self(Reg rd);
  void now(Reg rd);
  void numNodes(Reg rd);
  void log(std::string_view message, Reg value);

  // Finalises fixups and returns the program. The builder must not be
  // used afterwards.
  [[nodiscard]] Program finish();

 private:
  std::size_t emit(Instr instr);
  std::uint32_t internString(std::string_view s);

  Program program_;
  bool finished_ = false;
  // label id -> bound pc (or npos while unbound)
  std::vector<std::size_t> labelPc_;
  // (instruction index, which-immediate) pairs awaiting a label bind
  struct Fixup {
    std::size_t instrIndex;
    bool second;  // patch imm2 instead of imm
    std::uint32_t label;
  };
  std::vector<Fixup> fixups_;
  std::unordered_map<std::string, std::size_t> functionPc_;
  struct CallFixup {
    std::size_t instrIndex;
    std::string function;
  };
  std::vector<CallFixup> callFixups_;
  std::unordered_map<std::string, std::uint32_t> stringIndex_;
};

}  // namespace sde::vm
