// A node program: the code image every node of a given role executes.
// Programs are immutable after construction (built via vm::IRBuilder)
// and shared by all nodes and all execution states of a run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/assert.hpp"
#include "vm/isa.hpp"

namespace sde::vm {

// Entry points a program can expose. These mirror Contiki's event model:
// a boot event, periodic/one-shot timers, and radio reception.
enum class Entry : std::uint8_t {
  kInit = 0,    // fired once at node boot
  kTimer = 1,   // fired when an armed timer expires (r0 = timer id)
  kRecv = 2,    // fired on packet delivery (r0 = buffer obj, r1 = src,
                //  r2 = length)
};

[[nodiscard]] std::string_view entryName(Entry entry);

class Program {
 public:
  [[nodiscard]] const Instr& at(std::size_t pc) const {
    if (pc >= code_.size()) {
      std::fprintf(stderr, "pc=%zu size=%zu program=%s\n", pc, code_.size(), name_.c_str());
      SDE_ASSERT(pc < code_.size(), "pc out of range");
    }
    return code_[pc];
  }
  [[nodiscard]] std::size_t size() const { return code_.size(); }

  [[nodiscard]] std::optional<std::size_t> entry(Entry e) const {
    const auto it = entries_.find(e);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string_view string(std::uint32_t index) const {
    SDE_ASSERT(index < strings_.size(), "string index out of range");
    return strings_[index];
  }

  [[nodiscard]] std::uint64_t globalsSize() const { return globalsSize_; }
  [[nodiscard]] std::string_view name() const { return name_; }

  // Human-readable disassembly (tests and debugging).
  [[nodiscard]] std::string disassemble() const;

 private:
  friend class IRBuilder;

  std::string name_;
  std::vector<Instr> code_;
  std::map<Entry, std::size_t> entries_;
  std::vector<std::string> strings_;
  std::uint64_t globalsSize_ = 0;
};

}  // namespace sde::vm
