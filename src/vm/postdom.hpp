// Post-dominator analysis over a vm::Program's flat code array.
//
// The merge-aware interpreter uses this to find the join point of a
// symbolic branch: the immediate post-dominator of the branch pc is the
// first pc every arm must reach before the handler can finish, so two
// forked siblings parked there are candidates for an ite-merge
// (paper-adjacent: "State Merging with Quantifiers in Symbolic
// Execution" merges at such join points).
//
// CFG model (one node per instruction, plus one virtual EXIT node):
//   kJmp        -> { imm }
//   kBr         -> { imm, imm2 }
//   kCall       -> { pc + 1 }   (call summarized as "returns";
//                                non-returning callees only make the
//                                analysis conservative, never wrong,
//                                because parking tolerates arms that
//                                die before the join)
//   kRet/kHalt/kFail -> { EXIT }
//   everything else  -> { pc + 1 }
// Because kRet edges to EXIT, joins never span a call boundary: a
// branch whose arms both return has ipdom == EXIT and is simply not
// parked.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "vm/program.hpp"

namespace sde::vm {

class PostDominators {
 public:
  explicit PostDominators(const Program& program);

  // Index of the virtual exit node (== program size).
  [[nodiscard]] std::size_t exitNode() const { return exit_; }

  // Immediate post-dominator of `pc`; exitNode() when the handler end is
  // the only post-dominator, and also for nodes that cannot reach EXIT
  // at all (infinite loops — nothing sound to park at, so "no join").
  [[nodiscard]] std::size_t ipdom(std::size_t pc) const;

  // True when every path from `b` to EXIT passes through `a` (reflexive).
  [[nodiscard]] bool postDominates(std::size_t a, std::size_t b) const;

  // The merge point for a branch at `branchPc`: its immediate
  // post-dominator, or nullopt when that is the virtual exit (no
  // intra-handler join to park at).
  [[nodiscard]] std::optional<std::size_t> joinFor(std::size_t branchPc) const;

  // CFG successors of `pc` under the model above (exposed for the
  // property tests, which check joinFor against this very model).
  [[nodiscard]] static std::vector<std::size_t> successors(
      const Program& program, std::size_t pc);

 private:
  std::size_t exit_ = 0;
  // ipdom_[pc]; ipdom_[exit_] == exit_; unreached-from-EXIT nodes are
  // pinned to exit_.
  std::vector<std::size_t> ipdom_;
  std::vector<bool> reachesExit_;
};

}  // namespace sde::vm
