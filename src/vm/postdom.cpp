#include "vm/postdom.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace sde::vm {

std::vector<std::size_t> PostDominators::successors(const Program& program,
                                                    std::size_t pc) {
  const std::size_t exit = program.size();
  SDE_ASSERT(pc < exit, "successors: pc out of range");
  const Instr& in = program.at(pc);
  switch (in.op) {
    case Op::kJmp:
      return {static_cast<std::size_t>(in.imm)};
    case Op::kBr:
      return {static_cast<std::size_t>(in.imm),
              static_cast<std::size_t>(in.imm2)};
    case Op::kCall:
      return {pc + 1};
    case Op::kRet:
    case Op::kHalt:
    case Op::kFail:
      return {exit};
    default:
      return {pc + 1 < exit ? pc + 1 : exit};
  }
}

PostDominators::PostDominators(const Program& program) {
  const std::size_t n = program.size();
  exit_ = n;
  ipdom_.assign(n + 1, exit_);
  reachesExit_.assign(n + 1, false);
  if (n == 0) {
    reachesExit_[exit_] = true;
    return;
  }

  // Successor and (original-graph) predecessor lists; the predecessor
  // lists are the adjacency of the reversed graph rooted at EXIT.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::vector<std::size_t>> pred(n + 1);
  for (std::size_t pc = 0; pc < n; ++pc) {
    succ[pc] = successors(program, pc);
    for (const std::size_t s : succ[pc]) {
      SDE_ASSERT(s <= n, "successor out of range");
      pred[s].push_back(pc);
    }
  }

  // Reverse post-order of the reversed graph, from EXIT, iteratively
  // (programs can be long straight lines; no recursion).
  std::vector<std::uint32_t> rpo(n + 1, 0);
  std::vector<std::size_t> order;  // postorder of the reversed DFS
  order.reserve(n + 1);
  {
    std::vector<std::uint8_t> seen(n + 1, 0);
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, next)
    stack.emplace_back(exit_, 0);
    seen[exit_] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < pred[node].size()) {
        const std::size_t child = pred[node][next++];
        if (!seen[child]) {
          seen[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  std::reverse(order.begin(), order.end());  // now RPO; order[0] == exit_
  for (std::size_t i = 0; i < order.size(); ++i) {
    rpo[order[i]] = static_cast<std::uint32_t>(i);
    reachesExit_[order[i]] = true;
  }

  // Cooper–Harvey–Kennedy iterative dominance on the reversed graph.
  // "Predecessors" of b in the reversed graph are b's original
  // successors. Unprocessed/unreachable entries stay kUndef.
  constexpr std::size_t kUndef = static_cast<std::size_t>(-1);
  std::vector<std::size_t> idom(n + 1, kUndef);
  idom[exit_] = exit_;
  const auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (rpo[a] > rpo[b]) a = idom[a];
      while (rpo[b] > rpo[a]) b = idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::size_t b : order) {
      if (b == exit_) continue;
      std::size_t best = kUndef;
      for (const std::size_t p : succ[b]) {
        if (idom[p] == kUndef) continue;
        best = best == kUndef ? p : intersect(p, best);
      }
      if (best == kUndef) continue;
      if (idom[b] != best) {
        idom[b] = best;
        changed = true;
      }
    }
  }
  for (std::size_t pc = 0; pc <= n; ++pc)
    ipdom_[pc] = idom[pc] == kUndef ? exit_ : idom[pc];
}

std::size_t PostDominators::ipdom(std::size_t pc) const {
  SDE_ASSERT(pc < ipdom_.size(), "ipdom: pc out of range");
  return ipdom_[pc];
}

bool PostDominators::postDominates(std::size_t a, std::size_t b) const {
  SDE_ASSERT(a < ipdom_.size() && b < ipdom_.size(),
             "postDominates: pc out of range");
  if (a == exit_) return true;  // every path ends at EXIT
  if (!reachesExit_[b]) return false;
  for (std::size_t cur = b;; cur = ipdom_[cur]) {
    if (cur == a) return true;
    if (cur == exit_) return false;
  }
}

std::optional<std::size_t> PostDominators::joinFor(std::size_t branchPc) const {
  SDE_ASSERT(branchPc < exit_, "joinFor: pc out of range");
  if (!reachesExit_[branchPc]) return std::nullopt;
  const std::size_t j = ipdom_[branchPc];
  if (j == exit_) return std::nullopt;
  return j;
}

}  // namespace sde::vm
