// Pre-decoded instruction streams for the interpreter's threaded
// dispatch (DESIGN.md section 20).
//
// A Program is immutable after IRBuilder::finish(), so everything the
// per-instruction hot path re-derives from the raw Instr — bounds
// checks, operand validation, the decode switch itself — can be done
// once per program instead of once per executed instruction. The
// DecodedProgram is a 1:1 pc-indexed mirror of Program::code(): slot i
// holds the decoded form of instruction i, so `state.pc`, jump targets,
// call stacks, merge join points and checkpointed pcs keep their exact
// baseline meaning.
//
// Superinstructions: in kFused mode, a slot whose instruction pair
// (i, i+1) matches a fusion rule gets a combined handler that executes
// both bodies back-to-back and skips to i+2. Slot i+1 always keeps its
// own standalone handler, so control entering at i+1 (jump target, call
// return, entry point) still executes it normally — fusion never needs
// a jump-target bitmap to stay safe. Fused handlers chain the exact
// switch-path op bodies (same expression-builder call sequence, same
// step accounting), which is what keeps digests and the interning log
// byte-identical across dispatch modes.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "expr/expr.hpp"
#include "vm/isa.hpp"
#include "vm/program.hpp"

namespace sde::vm {

enum class DispatchMode : std::uint8_t {
  kSwitch = 0,   // PR-baseline per-step decode switch
  kThreaded,     // pre-decoded stream + computed-goto dispatch
  kFused,        // kThreaded + superinstructions (the default)
};

[[nodiscard]] std::string_view dispatchModeName(DispatchMode mode);
// Parses "switch" / "threaded" / "fused" (case-sensitive).
[[nodiscard]] bool parseDispatchMode(std::string_view text, DispatchMode& out);
// Process-wide default: SDE_DISPATCH=switch|threaded|fused wins, else the
// boolean SDE_THREADED_DISPATCH (0 => switch, nonzero => fused), else
// kFused. Read once and cached — the toggle is a process property.
[[nodiscard]] DispatchMode dispatchModeFromEnv();
// SDE_OPCODE_TIME=1: per-opcode self-time + adjacent-pair histogram
// (forces the switch executor; see InterpConfig::opcodeTiming).
[[nodiscard]] bool opcodeTimingFromEnv();

// Handler index space: plain opcodes first (index == raw Op value), then
// the superinstructions. The executor's label table is indexed by this.
enum Handler : std::uint16_t {
  kHandlerFirstFused = static_cast<std::uint16_t>(kNumOps),
  kHandlerAluBr = kHandlerFirstFused,  // binary ALU (usually a compare) ; br
  kHandlerConstAlu,                    // const scratch ; binary ALU
  kHandlerLoadGBr,                     // loadg ; br
  kHandlerConstStoreG,                 // const ; storeg
  kHandlerMovBr,                       // mov ; br
  // Sentinel slot appended after the last instruction: running off the
  // end of the program asserts, matching the baseline Program::at().
  kHandlerOutOfRange,
  kNumHandlers,
};

// The fusion rule table: the combined handler for (first, second), or 0
// when the pair does not fuse. Exposed so the selection is auditable
// against the per-opcode pair histogram (EXPERIMENTS.md E23).
[[nodiscard]] std::uint16_t fusedHandlerFor(Op first, Op second);
[[nodiscard]] std::string_view handlerName(std::uint16_t handler);

struct DecodedInstr {
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;
  // kConst slots: the interned constant, filled on FIRST execution (not
  // at decode time — decode-time interning would shift the interning-log
  // order against the switch baseline and break checkpoint byte
  // equality). nullptr until then.
  mutable expr::Ref constCache = nullptr;
  std::uint16_t handler = 0;
  Op op = Op::kNop;  // original opcode (profiler attribution, asserts)
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::uint32_t str = 0;
};

class DecodedProgram {
 public:
  // Decodes and validates `program`; `fuse` selects superinstructions.
  // Validation (register indices, jump targets, symbolic widths) happens
  // here once, replacing the per-fetch checks of Program::at().
  DecodedProgram(const Program& program, bool fuse);

  [[nodiscard]] const DecodedInstr* code() const { return code_.data(); }
  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] std::size_t fusedSlots() const { return fusedSlots_; }

 private:
  std::vector<DecodedInstr> code_;
  std::size_t fusedSlots_ = 0;
};

}  // namespace sde::vm
