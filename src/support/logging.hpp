// Minimal leveled logger. Off by default so test output stays clean;
// examples and benches enable it for progress reporting. logMessage is
// thread-safe (parallel partition workers log concurrently); the level
// itself is an atomic that callers normally set once at startup.
#pragma once

#include <string>
#include <string_view>

namespace sde::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

void logMessage(LogLevel level, std::string_view component,
                std::string_view message);

inline void logDebug(std::string_view component, std::string_view message) {
  logMessage(LogLevel::kDebug, component, message);
}
inline void logInfo(std::string_view component, std::string_view message) {
  logMessage(LogLevel::kInfo, component, message);
}
inline void logWarn(std::string_view component, std::string_view message) {
  logMessage(LogLevel::kWarn, component, message);
}
inline void logError(std::string_view component, std::string_view message) {
  logMessage(LogLevel::kError, component, message);
}

}  // namespace sde::support
