// Bump-pointer arena for immutable, trivially-destructible node graphs.
//
// The expression context interns nodes that live exactly as long as the
// context itself (DESIGN.md section 4: Ref is a plain pointer, pointer
// equality == structural equality). That lifetime discipline is what a
// bump allocator wants: allocation is a pointer increment inside a large
// block, objects are never freed individually, and the whole arena is
// released when the owner dies. Compared to one heap allocation per node
// (or a deque's fixed-size chunks of full Expr objects), this removes
// per-node malloc metadata and keeps consecutively-interned nodes —
// which are overwhelmingly also consecutively *walked* nodes, because
// expression DAGs are built bottom-up — adjacent in memory.
//
// Objects allocated here must be trivially destructible: the arena frees
// raw blocks only and never runs destructors (enforced by static_assert
// in create()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace sde::support {

class Arena {
 public:
  // Default block size: 256 KiB holds ~4600 Expr nodes per block, large
  // enough that block switches are rare but small enough that a mostly
  // concrete run does not pin megabytes. A degenerate `blockBytes` that
  // is smaller than a single allocation still works — every allocation
  // then gets its own exact-size block — which is what the bench_vm
  // "heap mode" A/B uses to emulate per-node allocation.
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{256} * 1024;

  explicit Arena(std::size_t blockBytes = kDefaultBlockBytes)
      : blockBytes_(blockBytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    SDE_ASSERT(align > 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    std::uintptr_t p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      newBlock(bytes, align);
      p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytesAllocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  template <class T, class... Args>
  [[nodiscard]] T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  // --- Introspection (bench_vm / stats reporting) -------------------------
  [[nodiscard]] std::size_t bytesAllocated() const { return bytesAllocated_; }
  [[nodiscard]] std::size_t bytesReserved() const { return bytesReserved_; }
  [[nodiscard]] std::size_t numBlocks() const { return blocks_.size(); }
  [[nodiscard]] std::size_t blockBytes() const { return blockBytes_; }

 private:
  void newBlock(std::size_t bytes, std::size_t align) {
    // Worst case the aligned allocation needs `bytes + align - 1` of
    // fresh space; oversized requests get an exact-fit block.
    const std::size_t want = bytes + align - 1;
    const std::size_t size = want > blockBytes_ ? want : blockBytes_;
    blocks_.push_back(std::make_unique<std::byte[]>(size));
    bytesReserved_ += size;
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + size;
  }

  std::size_t blockBytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;  // cursor_ == limit_ == 0 until first block
  std::size_t bytesAllocated_ = 0;
  std::size_t bytesReserved_ = 0;
};

}  // namespace sde::support
