// Persistent, structurally-shared sequences — the state-fork cost model.
//
// The paper's Table I is a memory story: COB dies at the RAM cap because
// every local branch copies all k-1 sibling states. Our ExecutionState
// used to deep-copy its append-only histories (constraints, comm log,
// decision log, symbolic inputs) on every fork; these containers make
// that copy O(1) by the same discipline AddressSpace applies to memory
// objects, extended to sequences:
//
//  * PVector<T>  — an append-only sequence stored as immutable, shared
//    chunks of kChunkCapacity elements plus a small mutable tail.
//    Copying shares every sealed chunk (one shared_ptr spine copy) and
//    clones only the tail (< kChunkCapacity elements), so a fork costs
//    O(1) in the sequence length. Sealing a full tail copies the spine
//    pointer array — amortised one pointer per push.
//
//  * CowVec<T>   — a random-access sequence shared whole-sale between
//    copies; the first mutation after a copy clones the payload (the
//    event queue needs erase-in-the-middle, which chunk sharing cannot
//    express). Copying is O(1); mutation is pay-on-write.
//
// Both containers attribute their shared payloads once through the
// `seen`-map accounting protocol (vm::AddressSpace::accountBytes), feed
// the global sharing counters below (fork-cost observability: benches
// and the O(1)-fork unit tests read them), and honour the process-wide
// deep-copy mode — the legacy eager-copy representation kept alive as
// the differential-fuzz baseline: identical semantics, zero sharing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <vector>

#include "support/assert.hpp"

namespace sde::support {

// --- Sharing counters (process-wide, relaxed) --------------------------------
// Written on every container copy/seal/clone; read by bench_fork and the
// structural-sharing unit tests. Relaxed atomics: the counters are
// observability, never control flow, and per-engine determinism is
// provided by ExecutionState::forkCopyCost() instead.
struct PersistStats {
  std::atomic<std::uint64_t> elementsCopied{0};  // deep element copies
  std::atomic<std::uint64_t> chunksShared{0};    // chunk refs shared on copy
  std::atomic<std::uint64_t> chunksSealed{0};    // tails frozen into chunks
  std::atomic<std::uint64_t> cowClones{0};       // CowVec clone-on-write events

  void reset() {
    elementsCopied.store(0, std::memory_order_relaxed);
    chunksShared.store(0, std::memory_order_relaxed);
    chunksSealed.store(0, std::memory_order_relaxed);
    cowClones.store(0, std::memory_order_relaxed);
  }
};

inline PersistStats& persistStats() {
  static PersistStats stats;
  return stats;
}

// --- Legacy eager-copy mode --------------------------------------------------
// When set, every container copy clones its payload instead of sharing
// it — byte-for-byte the pre-persistent representation. The differential
// fuzz oracle runs the same exploration in both modes and demands
// identical digests; production code never sets this.
inline std::atomic<bool>& persistDeepCopyFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
[[nodiscard]] inline bool persistDeepCopyMode() {
  return persistDeepCopyFlag().load(std::memory_order_relaxed);
}
inline void setPersistDeepCopyMode(bool on) {
  persistDeepCopyFlag().store(on, std::memory_order_relaxed);
}

// RAII scope for tests: flips into deep-copy mode and restores on exit.
class ScopedDeepCopyMode {
 public:
  explicit ScopedDeepCopyMode(bool on = true) : previous_(persistDeepCopyMode()) {
    setPersistDeepCopyMode(on);
  }
  ~ScopedDeepCopyMode() { setPersistDeepCopyMode(previous_); }
  ScopedDeepCopyMode(const ScopedDeepCopyMode&) = delete;
  ScopedDeepCopyMode& operator=(const ScopedDeepCopyMode&) = delete;

 private:
  bool previous_;
};

// --- PVector -----------------------------------------------------------------
// The default chunk size is tuned to the engine's workloads: states are
// per-node VMs whose histories (comm records, path constraints,
// decisions) grow by a handful of entries per simulated send, so chunks
// must seal within tens of pushes for forks to share anything on
// realistic scenario lengths. 8 keeps the spine overhead at one pointer
// per 8 elements while letting even short runs build shared prefixes.
template <typename T, std::size_t kChunkCapacity = 8>
class PVector {
 public:
  static_assert(kChunkCapacity >= 2, "degenerate chunk size");
  using Chunk = std::vector<T>;  // exactly kChunkCapacity elements once sealed
  using Spine = std::vector<std::shared_ptr<const Chunk>>;
  static constexpr std::size_t chunkCapacity() { return kChunkCapacity; }

  PVector() = default;
  PVector(PVector&&) noexcept = default;
  PVector& operator=(PVector&&) noexcept = default;
  PVector(const PVector& other) { copyFrom(other); }
  PVector& operator=(const PVector& other) {
    if (this != &other) {
      spine_ = nullptr;
      tail_.clear();
      copyFrom(other);
    }
    return *this;
  }

  void push_back(T value) {
    tail_.push_back(std::move(value));
    if (tail_.size() == kChunkCapacity) seal();
  }

  [[nodiscard]] std::size_t size() const { return sealedSize() + tail_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    const std::size_t sealed = sealedSize();
    if (i >= sealed) return tail_[i - sealed];
    return (*(*spine_)[i / kChunkCapacity])[i % kChunkCapacity];
  }
  [[nodiscard]] const T& back() const {
    SDE_ASSERT(!empty(), "back() of an empty PVector");
    return (*this)[size() - 1];
  }

  // Forward const iterator (indices into the chunked storage).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const PVector* owner, std::size_t index)
        : owner_(owner), index_(index) {}

    reference operator*() const { return (*owner_)[index_]; }
    pointer operator->() const { return &(*owner_)[index_]; }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++index_;
      return old;
    }
    [[nodiscard]] bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }
    [[nodiscard]] bool operator!=(const const_iterator& other) const {
      return index_ != other.index_;
    }

   private:
    const PVector* owner_ = nullptr;
    std::size_t index_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

  // --- Fork-cost observability ------------------------------------------------
  // Elements a copy of this container deep-copies right now — the tail
  // in persistent mode, everything in legacy deep-copy mode. This is
  // the deterministic per-state quantity the engine's fork counters and
  // kStateFork trace records carry (the global PersistStats counters
  // are process-wide and interleave across engines).
  [[nodiscard]] std::uint64_t copyCostElements() const {
    return persistDeepCopyMode() ? size() : tail_.size();
  }
  // Chunk references a copy shares instead of cloning (zero in legacy
  // mode, which clones them).
  [[nodiscard]] std::uint64_t sharedChunksOnCopy() const {
    return persistDeepCopyMode() ? 0 : numChunks();
  }
  [[nodiscard]] std::size_t numChunks() const {
    return spine_ == nullptr ? 0 : spine_->size();
  }
  [[nodiscard]] std::size_t tailSize() const { return tail_.size(); }

  // --- Memory accounting ------------------------------------------------------
  // Bytes held by this sequence, attributing each shared chunk once via
  // `seen` (the AddressSpace protocol: first visitor pays). The spine
  // pointer array and tail are billed per owner — both are private to
  // one container — as a deterministic function of the shape, so the
  // total survives checkpoint/restore byte-for-byte.
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen) const {
    std::uint64_t bytes = tail_.size() * sizeof(T);
    bytes += numChunks() * sizeof(void*);  // spine entries
    if (spine_ != nullptr) {
      for (const std::shared_ptr<const Chunk>& chunk : *spine_) {
        const auto [it, inserted] =
            seen.emplace(chunk.get(), chunk->size() * sizeof(T));
        if (inserted) bytes += it->second;
      }
    }
    return bytes;
  }

  // --- Snapshot support -------------------------------------------------------
  // The snapshot layer serializes chunks through a pointer-identity
  // table (exactly like AddressSpace memory blobs) so that structural
  // sharing — and with it the memory accounting — survives restore.
  [[nodiscard]] const Spine* spine() const { return spine_.get(); }
  [[nodiscard]] const std::vector<T>& tail() const { return tail_; }
  void restoreSnapshot(std::shared_ptr<const Spine> spine,
                       std::vector<T> tail) {
    SDE_ASSERT(empty(), "restoreSnapshot needs an empty PVector");
    SDE_ASSERT(tail.size() < kChunkCapacity, "restored tail over-full");
    spine_ = std::move(spine);
    tail_ = std::move(tail);
  }

 private:
  [[nodiscard]] std::size_t sealedSize() const {
    return numChunks() * kChunkCapacity;
  }

  void seal() {
    auto chunk = std::make_shared<const Chunk>(std::move(tail_));
    tail_.clear();
    auto spine = std::make_shared<Spine>();
    spine->reserve(numChunks() + 1);
    if (spine_ != nullptr) *spine = *spine_;
    spine->push_back(std::move(chunk));
    spine_ = std::move(spine);
    persistStats().chunksSealed.fetch_add(1, std::memory_order_relaxed);
  }

  void copyFrom(const PVector& other) {
    PersistStats& stats = persistStats();
    tail_ = other.tail_;
    std::uint64_t copied = other.tail_.size();
    if (other.spine_ != nullptr) {
      if (persistDeepCopyMode()) {
        // Legacy representation: clone every chunk (the fuzz baseline).
        auto spine = std::make_shared<Spine>();
        spine->reserve(other.spine_->size());
        for (const std::shared_ptr<const Chunk>& chunk : *other.spine_) {
          spine->push_back(std::make_shared<const Chunk>(*chunk));
          copied += chunk->size();
        }
        spine_ = std::move(spine);
      } else {
        spine_ = other.spine_;
        stats.chunksShared.fetch_add(other.spine_->size(),
                                     std::memory_order_relaxed);
      }
    }
    stats.elementsCopied.fetch_add(copied, std::memory_order_relaxed);
  }

  std::shared_ptr<const Spine> spine_;  // null = no sealed chunks yet
  std::vector<T> tail_;                 // < kChunkCapacity elements
};

// --- CowVec ------------------------------------------------------------------
template <typename T>
class CowVec {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;

  CowVec() = default;
  CowVec(CowVec&&) noexcept = default;
  CowVec& operator=(CowVec&&) noexcept = default;
  CowVec(const CowVec& other) { copyFrom(other); }
  CowVec& operator=(const CowVec& other) {
    if (this != &other) {
      data_ = nullptr;
      copyFrom(other);
    }
    return *this;
  }

  [[nodiscard]] const std::vector<T>& view() const {
    return data_ == nullptr ? emptyVector() : *data_;
  }
  [[nodiscard]] std::size_t size() const { return view().size(); }
  [[nodiscard]] bool empty() const { return view().empty(); }
  [[nodiscard]] const T& operator[](std::size_t i) const { return view()[i]; }
  [[nodiscard]] const T& back() const { return view().back(); }
  [[nodiscard]] const_iterator begin() const { return view().begin(); }
  [[nodiscard]] const_iterator end() const { return view().end(); }

  void push_back(T value) { mut().push_back(std::move(value)); }
  void pop_back() { mut().pop_back(); }
  void clear() { data_ = nullptr; }  // drops our reference; sharers keep theirs

  void erase(const_iterator pos) {
    const std::size_t index =
        static_cast<std::size_t>(pos - view().begin());
    std::vector<T>& items = mut();  // may reallocate: use the index, not pos
    items.erase(items.begin() + static_cast<std::ptrdiff_t>(index));
  }

  // Removes all elements matching `pred` (which must be pure: it may run
  // multiple times per element). Returns the number removed. A no-match
  // scan never clones shared storage.
  template <typename Pred>
  std::size_t eraseIf(Pred pred) {
    const std::vector<T>& items = view();
    if (std::none_of(items.begin(), items.end(), pred)) return 0;
    return std::erase_if(mut(), pred);
  }

  [[nodiscard]] std::uint64_t copyCostElements() const {
    return persistDeepCopyMode() ? size() : 0;
  }
  [[nodiscard]] std::uint64_t sharedChunksOnCopy() const {
    return (!persistDeepCopyMode() && data_ != nullptr) ? 1 : 0;
  }

  // Shared-aware accounting; `itemBytes` prices one element (payload
  // vectors included), charged once per distinct storage block.
  template <typename ItemBytes>
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen, ItemBytes itemBytes) const {
    if (data_ == nullptr) return 0;
    const auto found = seen.find(data_.get());
    if (found != seen.end()) return 0;
    std::uint64_t bytes = 0;
    for (const T& item : *data_) bytes += itemBytes(item);
    seen.emplace(data_.get(), bytes);
    return bytes;
  }

  // --- Snapshot support -------------------------------------------------------
  [[nodiscard]] const std::shared_ptr<std::vector<T>>& raw() const {
    return data_;
  }
  void restoreSnapshot(std::shared_ptr<std::vector<T>> data) {
    SDE_ASSERT(data_ == nullptr, "restoreSnapshot needs an empty CowVec");
    data_ = std::move(data);
  }

 private:
  static const std::vector<T>& emptyVector() {
    static const std::vector<T> empty;
    return empty;
  }

  std::vector<T>& mut() {
    if (data_ == nullptr) {
      data_ = std::make_shared<std::vector<T>>();
    } else if (data_.use_count() > 1) {
      PersistStats& stats = persistStats();
      stats.cowClones.fetch_add(1, std::memory_order_relaxed);
      stats.elementsCopied.fetch_add(data_->size(), std::memory_order_relaxed);
      data_ = std::make_shared<std::vector<T>>(*data_);
    }
    return *data_;
  }

  void copyFrom(const CowVec& other) {
    if (other.data_ == nullptr) return;
    if (persistDeepCopyMode()) {
      data_ = std::make_shared<std::vector<T>>(*other.data_);
      persistStats().elementsCopied.fetch_add(other.data_->size(),
                                              std::memory_order_relaxed);
    } else {
      data_ = other.data_;
    }
  }

  std::shared_ptr<std::vector<T>> data_;  // null = empty
};

}  // namespace sde::support
