// Fixed-size worker pool for the parallel execution mode. Deliberately
// minimal: submit() enqueues a task, wait() blocks until every submitted
// task has finished. Determinism of the SDE parallel runner does not
// come from here — tasks may run in any order on any worker — it comes
// from the runner merging results in partition order afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sde::support {

class ThreadPool {
 public:
  // Spawns `workers` threads (at least one).
  explicit ThreadPool(unsigned workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  // Drains the queue, then joins all workers.
  ~ThreadPool();

  // Enqueues a task. Tasks must not submit further tasks from within
  // wait() callers' threads after shutdown began.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running. If any task
  // threw, rethrows the first captured exception here (once).
  void wait();

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;
  std::vector<std::thread> threads_;
};

}  // namespace sde::support
