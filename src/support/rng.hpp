// Deterministic random number generation (xoshiro256**). Used only by
// test-scenario generators and randomized property tests; the SDE engine
// itself is fully deterministic. std::mt19937 is avoided because its
// stream is not guaranteed identical across standard library versions
// for all distribution adaptors; we implement the distributions we need.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace sde::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t below(std::uint64_t bound) {
    SDE_ASSERT(bound > 0, "Rng::below requires a positive bound");
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    SDE_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  bool chance(double p) {
    // 53-bit uniform double in [0,1).
    const double u =
        static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace sde::support
