// Lightweight named-counter registry. Engine components bump counters
// (solver queries, cache hits, forks, mapping invocations, duplicated
// states); benches and tests read them to validate behaviour, not just
// outputs — e.g. "SDS forked zero bystanders".
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace sde::support {

// Is `name` a high-water-mark counter? The rule is a *component* match:
// a counter records a maximum iff some dot-separated component of its
// name starts with "peak_" or is exactly "peak" (e.g.
// "engine.peak_states", "engine.peak_memory_bytes"). Aggregation
// (StatsRegistry::mergeFrom) folds such counters with max instead of +:
// a fleet's peak is the largest worker's peak, not their sum. A mere
// substring match would be too loose — e.g. a hypothetical
// "engine.speaker_events" is a running total and must be summed.
[[nodiscard]] inline bool isPeakCounter(std::string_view name) {
  std::size_t pos = 0;
  while (pos <= name.size()) {
    const std::size_t dot = name.find('.', pos);
    const std::string_view component =
        name.substr(pos, dot == std::string_view::npos ? dot : dot - pos);
    if (component == "peak" || component.substr(0, 5) == "peak_") return true;
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return false;
}

// The single aggregation rule for named counters, shared by
// StatsRegistry::mergeFrom and the metrics plane's snapshot merge
// (obs/metrics.hpp): fold `value` into `slot`, taking the max for
// high-water marks and the sum for everything else. Keeping the rule in
// one place is what makes "fleet totals" mean the same thing whether
// they were folded from post-run StatsRegistry dumps or live metrics
// snapshots.
inline void foldCounter(std::string_view name, std::uint64_t& slot,
                        std::uint64_t value) {
  if (isPeakCounter(name)) {
    if (value > slot) slot = value;
  } else {
    slot += value;
  }
}

class StatsRegistry {
 public:
  void bump(std::string_view name, std::uint64_t delta = 1) {
    counters_[std::string(name)] += delta;
  }
  void set(std::string_view name, std::uint64_t value) {
    counters_[std::string(name)] = value;
  }
  void maxOf(std::string_view name, std::uint64_t value) {
    auto& slot = counters_[std::string(name)];
    if (value > slot) slot = value;
  }

  // Aggregates a per-worker registry into this one: counters are
  // summed, except high-water marks (names containing "peak"), which
  // take the maximum — a fleet's peak is the largest worker's peak, not
  // their sum.
  void mergeFrom(const StatsRegistry& other);

  [[nodiscard]] std::uint64_t get(std::string_view name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }
  void clear() { counters_.clear(); }

  // Render "name = value" lines, sorted by name, for bench output.
  [[nodiscard]] std::string report() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace sde::support
