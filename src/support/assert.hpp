// Internal invariant checking. SDE_ASSERT fires in all build types: the
// mapping algorithms' correctness arguments rest on structural invariants
// (conflict-freeness, per-dstate uniqueness) that we refuse to run without.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sde::support {

[[noreturn]] inline void assertFail(const char* cond, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "SDE_ASSERT failed: %s\n  at %s:%d\n  %s\n", cond,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace sde::support

#define SDE_ASSERT(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sde::support::assertFail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                               \
  } while (false)

#define SDE_UNREACHABLE(msg) \
  ::sde::support::assertFail("unreachable", __FILE__, __LINE__, (msg))
