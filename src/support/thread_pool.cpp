#include "support/thread_pool.hpp"

namespace sde::support {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  if (firstError_) {
    std::exception_ptr error = firstError_;
    firstError_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock lock(mutex_);
  while (true) {
    taskReady_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
    if (tasks_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++active_;
    lock.unlock();
    try {
      task();
    } catch (...) {
      lock.lock();
      if (!firstError_) firstError_ = std::current_exception();
      lock.unlock();
    }
    lock.lock();
    --active_;
    if (tasks_.empty() && active_ == 0) allDone_.notify_all();
  }
}

}  // namespace sde::support
