#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sde::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

// Serializes the fprintf so concurrent partition workers never
// interleave characters within one line.
std::mutex g_logMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, std::string_view component,
                std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_logMutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sde::support
