#include "support/stats.hpp"

#include <sstream>

namespace sde::support {

void StatsRegistry::mergeFrom(const StatsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    foldCounter(name, counters_[name], value);
  }
}

std::uint64_t StatsRegistry::get(std::string_view name) const {
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

std::string StatsRegistry::report() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  return os.str();
}

}  // namespace sde::support
