#include "support/stats.hpp"

#include <sstream>

namespace sde::support {

std::uint64_t StatsRegistry::get(std::string_view name) const {
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

std::string StatsRegistry::report() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  return os.str();
}

}  // namespace sde::support
