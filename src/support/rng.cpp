#include "support/rng.hpp"

// Header-only; anchor TU.
