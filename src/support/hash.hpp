// Deterministic hashing utilities used for expression interning, state
// configuration fingerprints, and duplicate detection. All hashes are
// stable across runs (no per-process seeding) so that test expectations
// and cross-algorithm equivalence checks are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sde::support {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// 64-bit finalizer (splitmix64); good avalanche for combining fields.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// Incremental hasher for composite objects (states, packets, dscenarios).
class Hasher {
 public:
  Hasher() = default;
  explicit Hasher(std::uint64_t seed) : h_(seed) {}

  Hasher& u64(std::uint64_t v) {
    h_ = hashCombine(h_, v);
    return *this;
  }
  Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Hasher& str(std::string_view s) { return u64(fnv1a(s)); }
  Hasher& ptr(const void* p) {
    return u64(reinterpret_cast<std::uintptr_t>(p));
  }

  [[nodiscard]] std::uint64_t digest() const { return mix64(h_); }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace sde::support
