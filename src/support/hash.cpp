#include "support/hash.hpp"

// Header-only; this TU exists to give the library an anchor and to
// compile the inline definitions once under the project's warning set.
namespace sde::support {

static_assert(fnv1a("kleenet") != fnv1a("kleener"),
              "fnv1a must distinguish near-identical strings");
static_assert(mix64(0) != 0, "mix64 must not fix zero");

}  // namespace sde::support
