#include "expr/expr.hpp"

#include "expr/context.hpp"

namespace sde::expr {

std::string_view kindName(Kind kind) {
  switch (kind) {
    case Kind::kConstant:
      return "const";
    case Kind::kVariable:
      return "var";
    case Kind::kNot:
      return "not";
    case Kind::kZExt:
      return "zext";
    case Kind::kSExt:
      return "sext";
    case Kind::kTrunc:
      return "trunc";
    case Kind::kAdd:
      return "add";
    case Kind::kSub:
      return "sub";
    case Kind::kMul:
      return "mul";
    case Kind::kUDiv:
      return "udiv";
    case Kind::kURem:
      return "urem";
    case Kind::kSDiv:
      return "sdiv";
    case Kind::kSRem:
      return "srem";
    case Kind::kAnd:
      return "and";
    case Kind::kOr:
      return "or";
    case Kind::kXor:
      return "xor";
    case Kind::kShl:
      return "shl";
    case Kind::kLShr:
      return "lshr";
    case Kind::kAShr:
      return "ashr";
    case Kind::kEq:
      return "eq";
    case Kind::kUlt:
      return "ult";
    case Kind::kUle:
      return "ule";
    case Kind::kSlt:
      return "slt";
    case Kind::kSle:
      return "sle";
    case Kind::kIte:
      return "ite";
    case Kind::kConcat:
      return "concat";
    case Kind::kExtract:
      return "extract";
  }
  return "?";
}

bool isComparison(Kind kind) {
  switch (kind) {
    case Kind::kEq:
    case Kind::kUlt:
    case Kind::kUle:
    case Kind::kSlt:
    case Kind::kSle:
      return true;
    default:
      return false;
  }
}

bool isCommutative(Kind kind) {
  switch (kind) {
    case Kind::kAdd:
    case Kind::kMul:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kXor:
    case Kind::kEq:
      return true;
    default:
      return false;
  }
}

std::string_view Expr::name() const {
  SDE_ASSERT(kind_ == Kind::kVariable, "name() on non-variable");
  return ctx_->variableName(aux_);
}

}  // namespace sde::expr
