// Memoized variable substitution over the expression DAG.
//
// The state-merging machinery introduces fresh boolean guard variables
// ("mrg.N") whose two assignments select the two merged arms. Splitting
// a merged state back apart — before a concretization that must not see
// guard-dependent values, and when expanding merged test cases — means
// substituting a constant for the guard everywhere and letting the
// Context builders re-fold: ite(true, a, b) -> a etc. Rebuilding through
// the builders (rather than patching nodes) is what makes the split
// state bit-identical to the state an unmerged run would have produced.
#pragma once

#include <unordered_map>

#include "expr/context.hpp"
#include "expr/expr.hpp"

namespace sde::expr {

class Substitution {
 public:
  explicit Substitution(Context& ctx) : ctx_(ctx) {}

  // Maps `var` (a kVariable node) to `value` (same width). Later calls
  // for the same variable overwrite; the memo is invalidated.
  void set(Ref var, Ref value);

  // Returns `x` with every mapped variable replaced, rebuilt through the
  // Context simplifying builders. Identity (pointer-equal) when `x`
  // mentions no mapped variable.
  [[nodiscard]] Ref apply(Ref x);

  // True when `x` mentions at least one mapped variable. Memoized
  // independently of apply() (cheaper: no rebuilding).
  [[nodiscard]] bool mentionsAny(Ref x);

  [[nodiscard]] bool empty() const { return map_.empty(); }

 private:
  Context& ctx_;
  std::unordered_map<Ref, Ref> map_;
  std::unordered_map<Ref, Ref> memo_;
  std::unordered_map<Ref, bool> mentionsMemo_;
};

}  // namespace sde::expr
