#include "expr/subst.hpp"

#include "support/assert.hpp"

namespace sde::expr {

void Substitution::set(Ref var, Ref value) {
  SDE_ASSERT(var != nullptr && var->isVariable(), "subst key must be variable");
  SDE_ASSERT(value != nullptr && value->width() == var->width(),
             "subst value width mismatch");
  map_[var] = value;
  memo_.clear();
  mentionsMemo_.clear();
}

bool Substitution::mentionsAny(Ref x) {
  SDE_ASSERT(x != nullptr, "mentionsAny on null expr");
  if (map_.empty()) return false;
  if (const auto it = mentionsMemo_.find(x); it != mentionsMemo_.end())
    return it->second;
  bool hit = false;
  if (x->isVariable()) {
    hit = map_.contains(x);
  } else {
    for (const Ref op : x->operands())
      if (mentionsAny(op)) {
        hit = true;
        break;
      }
  }
  mentionsMemo_.emplace(x, hit);
  return hit;
}

Ref Substitution::apply(Ref x) {
  SDE_ASSERT(x != nullptr, "apply on null expr");
  if (!mentionsAny(x)) return x;
  if (const auto it = memo_.find(x); it != memo_.end()) return it->second;

  Ref out = nullptr;
  switch (x->kind()) {
    case Kind::kConstant:
      out = x;
      break;
    case Kind::kVariable: {
      const auto it = map_.find(x);
      out = it == map_.end() ? x : it->second;
      break;
    }
    case Kind::kNot:
      out = ctx_.bvNot(apply(x->operand(0)));
      break;
    case Kind::kZExt:
      out = ctx_.zext(apply(x->operand(0)), x->width());
      break;
    case Kind::kSExt:
      out = ctx_.sext(apply(x->operand(0)), x->width());
      break;
    case Kind::kTrunc:
      out = ctx_.trunc(apply(x->operand(0)), x->width());
      break;
    case Kind::kAdd:
      out = ctx_.add(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kSub:
      out = ctx_.sub(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kMul:
      out = ctx_.mul(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kUDiv:
      out = ctx_.udiv(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kURem:
      out = ctx_.urem(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kSDiv:
      out = ctx_.sdiv(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kSRem:
      out = ctx_.srem(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kAnd:
      out = ctx_.bvAnd(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kOr:
      out = ctx_.bvOr(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kXor:
      out = ctx_.bvXor(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kShl:
      out = ctx_.shl(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kLShr:
      out = ctx_.lshr(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kAShr:
      out = ctx_.ashr(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kEq:
      out = ctx_.eq(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kUlt:
      out = ctx_.ult(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kUle:
      out = ctx_.ule(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kSlt:
      out = ctx_.slt(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kSle:
      out = ctx_.sle(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kIte:
      out = ctx_.ite(apply(x->operand(0)), apply(x->operand(1)),
                     apply(x->operand(2)));
      break;
    case Kind::kConcat:
      out = ctx_.concat(apply(x->operand(0)), apply(x->operand(1)));
      break;
    case Kind::kExtract:
      out = ctx_.extract(apply(x->operand(0)), x->extractOffset(), x->width());
      break;
  }
  SDE_ASSERT(out != nullptr, "apply produced null");
  memo_.emplace(x, out);
  return out;
}

}  // namespace sde::expr
