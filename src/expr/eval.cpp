#include "expr/eval.hpp"

#include <unordered_map>

namespace sde::expr {

namespace {

using Memo = std::unordered_map<Ref, std::optional<std::uint64_t>>;

// Shared recursive core; `strict` controls whether unbound variables
// abort (strict) or yield nullopt (partial). Results are memoised per
// node: expressions are interned DAGs, and naive tree recursion is
// exponential on values that accumulate across many events.
std::optional<std::uint64_t> evalRec(Ref x, const Assignment& a, bool strict,
                                     Memo& memo);

std::optional<std::uint64_t> evalNode(Ref x, const Assignment& a, bool strict,
                                      Memo& memo) {
  switch (x->kind()) {
    case Kind::kConstant:
      return x->value();
    case Kind::kVariable: {
      auto v = a.get(x);
      if (!v && strict) SDE_ASSERT(false, "evaluate: unbound variable");
      return v;
    }
    case Kind::kNot: {
      auto v = evalRec(x->operand(0), a, strict, memo);
      if (!v) return std::nullopt;
      return maskToWidth(~*v, x->width());
    }
    case Kind::kZExt:
      return evalRec(x->operand(0), a, strict, memo);
    case Kind::kSExt: {
      auto v = evalRec(x->operand(0), a, strict, memo);
      if (!v) return std::nullopt;
      return maskToWidth(
          static_cast<std::uint64_t>(signExtend(*v, x->operand(0)->width())),
          x->width());
    }
    case Kind::kTrunc: {
      auto v = evalRec(x->operand(0), a, strict, memo);
      if (!v) return std::nullopt;
      return maskToWidth(*v, x->width());
    }
    case Kind::kIte: {
      auto c = evalRec(x->operand(0), a, strict, memo);
      if (!c) return std::nullopt;
      return evalRec(*c ? x->operand(1) : x->operand(2), a, strict, memo);
    }
    case Kind::kConcat: {
      auto hi = evalRec(x->operand(0), a, strict, memo);
      auto lo = evalRec(x->operand(1), a, strict, memo);
      if (!hi || !lo) return std::nullopt;
      return (*hi << x->operand(1)->width()) | *lo;
    }
    case Kind::kExtract: {
      auto v = evalRec(x->operand(0), a, strict, memo);
      if (!v) return std::nullopt;
      return maskToWidth(*v >> x->extractOffset(), x->width());
    }
    default: {
      auto va = evalRec(x->operand(0), a, strict, memo);
      auto vb = evalRec(x->operand(1), a, strict, memo);
      if (!va || !vb) return std::nullopt;
      const unsigned w = x->operand(0)->width();
      const std::uint64_t av = *va;
      const std::uint64_t bv = *vb;
      const std::uint64_t ones = maskToWidth(~std::uint64_t{0}, w);
      switch (x->kind()) {
        case Kind::kAdd:
          return maskToWidth(av + bv, w);
        case Kind::kSub:
          return maskToWidth(av - bv, w);
        case Kind::kMul:
          return maskToWidth(av * bv, w);
        case Kind::kUDiv:
          return bv == 0 ? ones : av / bv;
        case Kind::kURem:
          return bv == 0 ? av : av % bv;
        case Kind::kSDiv: {
          if (bv == 0) return ones;
          const std::int64_t sa = signExtend(av, w);
          const std::int64_t sb = signExtend(bv, w);
          if (sb == -1 && sa == signExtend(std::uint64_t{1} << (w - 1), w))
            return maskToWidth(static_cast<std::uint64_t>(sa), w);
          return maskToWidth(static_cast<std::uint64_t>(sa / sb), w);
        }
        case Kind::kSRem: {
          if (bv == 0) return av;
          const std::int64_t sa = signExtend(av, w);
          const std::int64_t sb = signExtend(bv, w);
          if (sb == -1) return std::uint64_t{0};
          return maskToWidth(static_cast<std::uint64_t>(sa % sb), w);
        }
        case Kind::kAnd:
          return av & bv;
        case Kind::kOr:
          return av | bv;
        case Kind::kXor:
          return av ^ bv;
        case Kind::kShl:
          return bv >= w ? 0 : maskToWidth(av << bv, w);
        case Kind::kLShr:
          return bv >= w ? 0 : (av >> bv);
        case Kind::kAShr: {
          const std::int64_t sa = signExtend(av, w);
          const unsigned sh = bv >= w ? w - 1 : static_cast<unsigned>(bv);
          return maskToWidth(static_cast<std::uint64_t>(sa >> sh), w);
        }
        case Kind::kEq:
          return av == bv ? 1 : 0;
        case Kind::kUlt:
          return av < bv ? 1 : 0;
        case Kind::kUle:
          return av <= bv ? 1 : 0;
        case Kind::kSlt:
          return signExtend(av, w) < signExtend(bv, w) ? 1 : 0;
        case Kind::kSle:
          return signExtend(av, w) <= signExtend(bv, w) ? 1 : 0;
        default:
          SDE_UNREACHABLE("evaluate: unhandled kind");
      }
    }
  }
}

std::optional<std::uint64_t> evalRec(Ref x, const Assignment& a, bool strict,
                                     Memo& memo) {
  const auto it = memo.find(x);
  if (it != memo.end()) return it->second;
  const auto result = evalNode(x, a, strict, memo);
  memo.emplace(x, result);
  return result;
}

}  // namespace

std::uint64_t evaluate(Ref x, const Assignment& assignment) {
  Memo memo;
  auto v = evalRec(x, assignment, /*strict=*/true, memo);
  SDE_ASSERT(v.has_value(), "evaluate: incomplete assignment");
  return *v;
}

std::optional<std::uint64_t> tryEvaluate(Ref x, const Assignment& assignment) {
  Memo memo;
  return evalRec(x, assignment, /*strict=*/false, memo);
}

}  // namespace sde::expr
