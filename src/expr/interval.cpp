#include "expr/interval.hpp"

#include <algorithm>
#include <unordered_map>

namespace sde::expr {

namespace {

using Memo = std::unordered_map<Ref, Interval>;

// Smallest all-ones mask covering `x` (e.g. 0b10110 -> 0b11111).
std::uint64_t coveringMask(std::uint64_t x) {
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x;
}

bool addOverflows(std::uint64_t a, std::uint64_t b, unsigned width) {
  const std::uint64_t mask = maskToWidth(~std::uint64_t{0}, width);
  return a > mask - b;
}

Interval intersect(Interval a, Interval b, bool& feasible) {
  Interval r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  feasible = r.lo <= r.hi;
  return feasible ? r : Interval{1, 0};
}

}  // namespace

namespace {
Interval intervalRec(Ref x, const IntervalEnv& env, Memo& memo);

Interval intervalNode(Ref x, const IntervalEnv& env, Memo& memo) {
  const unsigned w = x->width();
  const Interval top = Interval::top(w);
  switch (x->kind()) {
    case Kind::kConstant:
      return Interval::point(x->value());
    case Kind::kVariable: {
      auto it = env.find(x);
      return it == env.end() ? top : it->second;
    }
    case Kind::kNot: {
      // ~v == mask - v on the masked domain, monotone decreasing.
      const Interval v = intervalRec(x->operand(0), env, memo);
      const std::uint64_t mask = maskToWidth(~std::uint64_t{0}, w);
      return {mask - v.hi, mask - v.lo};
    }
    case Kind::kZExt:
      return intervalRec(x->operand(0), env, memo);
    case Kind::kSExt: {
      const Ref inner = x->operand(0);
      const Interval v = intervalRec(inner, env, memo);
      const std::uint64_t innerSign = std::uint64_t{1} << (inner->width() - 1);
      if (v.hi < innerSign) return v;  // provably non-negative
      return top;
    }
    case Kind::kTrunc: {
      const Interval v = intervalRec(x->operand(0), env, memo);
      const std::uint64_t mask = maskToWidth(~std::uint64_t{0}, w);
      if (v.hi <= mask) return v;  // fits without wrapping
      return top;
    }
    case Kind::kIte: {
      const Interval c = intervalRec(x->operand(0), env, memo);
      if (c.isPoint())
        return intervalRec(c.lo ? x->operand(1) : x->operand(2), env, memo);
      const Interval a = intervalRec(x->operand(1), env, memo);
      const Interval b = intervalOf(x->operand(2), env);
      return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
    }
    case Kind::kConcat: {
      const Ref lo = x->operand(1);
      const Interval hiI = intervalRec(x->operand(0), env, memo);
      const Interval loI = intervalRec(lo, env, memo);
      // (hi << n | lo) is monotone in hi; bound lo by its full width.
      const std::uint64_t loMask = maskToWidth(~std::uint64_t{0}, lo->width());
      const std::uint64_t base = hiI.lo << lo->width();
      const std::uint64_t topV = (hiI.hi << lo->width()) | loMask;
      return {base + std::min(loI.lo, loMask), topV};
    }
    case Kind::kExtract: {
      const Interval v = intervalRec(x->operand(0), env, memo);
      if (x->extractOffset() == 0) {
        const std::uint64_t mask = maskToWidth(~std::uint64_t{0}, w);
        if (v.hi <= mask) return v;
        return top;
      }
      return top;
    }
    case Kind::kAdd: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (addOverflows(a.hi, b.hi, w)) return top;
      return {a.lo + b.lo, a.hi + b.hi};
    }
    case Kind::kSub: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (a.lo < b.hi) return top;  // could wrap below zero
      return {a.lo - b.hi, a.hi - b.lo};
    }
    case Kind::kMul: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      const __uint128_t prod =
          static_cast<__uint128_t>(a.hi) * static_cast<__uint128_t>(b.hi);
      const std::uint64_t mask = maskToWidth(~std::uint64_t{0}, w);
      if (prod > mask) return top;
      return {a.lo * b.lo, static_cast<std::uint64_t>(prod)};
    }
    case Kind::kUDiv: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (b.lo == 0) return top;  // division by zero yields all-ones
      return {a.lo / b.hi, a.hi / b.lo};
    }
    case Kind::kURem: {
      const Interval b = intervalRec(x->operand(1), env, memo);
      const Interval a = intervalRec(x->operand(0), env, memo);
      if (b.lo == 0) return {0, std::max(a.hi, b.hi)};  // x % 0 == x
      return {0, std::min(a.hi, b.hi - 1)};
    }
    case Kind::kAnd: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      return {0, std::min(a.hi, b.hi)};
    }
    case Kind::kOr: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      return {std::max(a.lo, b.lo), coveringMask(a.hi | b.hi)};
    }
    case Kind::kXor: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      return {0, coveringMask(a.hi | b.hi)};
    }
    case Kind::kShl: {
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (!b.isPoint()) return top;
      if (b.lo >= w) return Interval::point(0);
      const Interval a = intervalRec(x->operand(0), env, memo);
      const std::uint64_t mask = maskToWidth(~std::uint64_t{0}, w);
      if (b.lo != 0 && a.hi > (mask >> b.lo)) return top;
      return {a.lo << b.lo, a.hi << b.lo};
    }
    case Kind::kLShr: {
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (!b.isPoint()) return top;
      if (b.lo >= w) return Interval::point(0);
      const Interval a = intervalRec(x->operand(0), env, memo);
      return {a.lo >> b.lo, a.hi >> b.lo};
    }
    case Kind::kAShr:
      return top;
    case Kind::kEq: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (a.isPoint() && b.isPoint())
        return Interval::point(a.lo == b.lo ? 1 : 0);
      if (a.hi < b.lo || b.hi < a.lo) return Interval::point(0);  // disjoint
      return Interval::top(1);
    }
    case Kind::kUlt: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (a.hi < b.lo) return Interval::point(1);
      if (a.lo >= b.hi) return Interval::point(0);
      return Interval::top(1);
    }
    case Kind::kUle: {
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (a.hi <= b.lo) return Interval::point(1);
      if (a.lo > b.hi) return Interval::point(0);
      return Interval::top(1);
    }
    case Kind::kSlt:
    case Kind::kSle: {
      // Precise only when both sides are provably non-negative (common
      // case: zero-extended small values).
      const unsigned ow = x->operand(0)->width();
      const std::uint64_t sign = std::uint64_t{1} << (ow - 1);
      const Interval a = intervalRec(x->operand(0), env, memo);
      const Interval b = intervalRec(x->operand(1), env, memo);
      if (a.hi < sign && b.hi < sign) {
        if (x->kind() == Kind::kSlt) {
          if (a.hi < b.lo) return Interval::point(1);
          if (a.lo >= b.hi) return Interval::point(0);
        } else {
          if (a.hi <= b.lo) return Interval::point(1);
          if (a.lo > b.hi) return Interval::point(0);
        }
      }
      return Interval::top(1);
    }
    default:
      return top;
  }
}

Interval intervalRec(Ref x, const IntervalEnv& env, Memo& memo) {
  // Memoised per node: expressions are interned DAGs and naive tree
  // recursion is exponential on values accumulated over many events.
  const auto it = memo.find(x);
  if (it != memo.end()) return it->second;
  const Interval result = intervalNode(x, env, memo);
  memo.emplace(x, result);
  return result;
}
}  // namespace

Interval intervalOf(Ref x, const IntervalEnv& env) {
  Memo memo;
  return intervalRec(x, env, memo);
}

bool refineByConstraint(Ref c, IntervalEnv& env) {
  SDE_ASSERT(c->width() == 1, "refineByConstraint expects a boolean term");

  // Quick global feasibility check first.
  const Interval ci = intervalOf(c, env);
  if (ci.isPoint() && ci.lo == 0) return false;

  // Strip double negation; handle (not cmp) by flipping.
  bool negated = false;
  Ref core = c;
  while (core->kind() == Kind::kNot) {
    negated = !negated;
    core = core->operand(0);
  }

  // Conjunctions refine both sides (only in the positive polarity).
  if (!negated && core->kind() == Kind::kAnd && core->width() == 1)
    return refineByConstraint(core->operand(0), env) &&
           refineByConstraint(core->operand(1), env);

  if (!isComparison(core->kind())) return true;

  // Recognise `op(viewOfVar, const)` / `op(const, viewOfVar)` where
  // viewOfVar is a variable possibly wrapped in zext/trunc that preserves
  // low bits.
  auto unwrapVar = [](Ref t) -> Ref {
    while (t->kind() == Kind::kZExt) t = t->operand(0);
    return t->isVariable() ? t : nullptr;
  };

  Ref lhs = core->operand(0);
  Ref rhs = core->operand(1);
  Ref var = unwrapVar(lhs);
  Ref constSide = rhs;
  bool varOnLeft = true;
  if (!var || !rhs->isConstant()) {
    var = unwrapVar(rhs);
    constSide = lhs;
    varOnLeft = false;
    if (!var || !lhs->isConstant()) return true;  // unsupported shape: no-op
  }
  const std::uint64_t k = constSide->value();
  const std::uint64_t varMax = maskToWidth(~std::uint64_t{0}, var->width());

  auto it = env.emplace(var, Interval::top(var->width())).first;
  Interval bound = Interval::top(var->width());

  switch (core->kind()) {
    case Kind::kEq:
      if (!negated) {
        if (k > varMax) return false;  // zext(x) == k with k out of range
        bound = Interval::point(k);
      } else {
        // x != k shaves an endpoint only if k is one.
        if (it->second.isPoint() && it->second.lo == k) return false;
        if (it->second.lo == k && k < varMax)
          bound = {k + 1, varMax};
        else if (it->second.hi == k && k > 0)
          bound = {0, k - 1};
      }
      break;
    case Kind::kUlt:
      if (varOnLeft) {
        if (!negated) {  // x < k
          if (k == 0) return false;
          bound = {0, std::min(k - 1, varMax)};
        } else {  // x >= k
          if (k > varMax) return false;
          bound = {k, varMax};
        }
      } else {
        if (!negated) {  // k < x
          if (k >= varMax) return false;
          bound = {k + 1, varMax};
        } else {  // x <= k
          bound = {0, std::min(k, varMax)};
        }
      }
      break;
    case Kind::kUle:
      if (varOnLeft) {
        if (!negated) {  // x <= k
          bound = {0, std::min(k, varMax)};
        } else {  // x > k
          if (k >= varMax) return false;
          bound = {k + 1, varMax};
        }
      } else {
        if (!negated) {  // k <= x
          if (k > varMax) return false;
          bound = {k, varMax};
        } else {  // x < k
          if (k == 0) return false;
          bound = {0, std::min(k - 1, varMax)};
        }
      }
      break;
    default:
      return true;  // signed comparisons: skip narrowing, stay sound
  }

  bool feasible = true;
  it->second = intersect(it->second, bound, feasible);
  return feasible;
}

}  // namespace sde::expr
