// Unsigned interval abstract domain over bitvector terms.
//
// Sound, non-wrapping intervals [lo, hi] in [0, 2^w - 1]. Used by the
// solver for (a) fast infeasibility checks before model enumeration and
// (b) narrowing variable domains so enumeration visits few candidates.
// Any operation whose exact result could wrap returns the full range —
// precision is best-effort, soundness is mandatory.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "expr/expr.hpp"

namespace sde::expr {

struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static Interval point(std::uint64_t v) { return {v, v}; }
  static Interval top(unsigned width) {
    return {0, maskToWidth(~std::uint64_t{0}, width)};
  }

  [[nodiscard]] bool isPoint() const { return lo == hi; }
  [[nodiscard]] bool contains(std::uint64_t v) const {
    return lo <= v && v <= hi;
  }
  // Number of values in the interval; saturates at UINT64_MAX for the
  // full 64-bit range.
  [[nodiscard]] std::uint64_t size() const {
    const std::uint64_t span = hi - lo;
    return span == ~std::uint64_t{0} ? span : span + 1;
  }

  bool operator==(const Interval&) const = default;
};

// Optional per-variable bounds consulted during analysis; variables not
// present are assumed to span their full width.
using IntervalEnv = std::unordered_map<Ref, Interval>;

// Computes a sound interval for `x` under `env`.
[[nodiscard]] Interval intervalOf(Ref x, const IntervalEnv& env);

// Refines `env` with the information that boolean term `c` holds.
// Handles the comparison shapes the VM actually emits (variable or
// zext/trunc-of-variable against a constant, and conjunctions thereof).
// Returns false if the constraint is found infeasible under `env`.
[[nodiscard]] bool refineByConstraint(Ref c, IntervalEnv& env);

}  // namespace sde::expr
