// Expression context: owns and interns all Expr nodes, and exposes the
// width-checked, simplifying builder API. One Context is shared by an
// entire SDE run (all nodes, all execution states); nodes are never
// freed before the context is destroyed, which keeps Ref a plain pointer
// and makes pointer equality equal to structural equality.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"
#include "support/arena.hpp"

namespace sde::expr {

class Context {
 public:
  Context();
  // Arena block-size override. The default (support::Arena's block size)
  // is right for real runs; bench_vm passes 1 to force one exact-fit
  // allocation per node ("heap mode") for the arena-vs-heap A/B. The
  // knob changes memory layout only — interning order, ids, hashes and
  // the serialized expr log are identical for every block size.
  explicit Context(std::size_t arenaBlockBytes);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- Leaves ------------------------------------------------------------
  Ref constant(std::uint64_t value, unsigned width);
  Ref boolConst(bool value) { return value ? true_ : false_; }
  Ref trueExpr() const { return true_; }
  Ref falseExpr() const { return false_; }

  // Variables are interned by name; requesting an existing name with a
  // different width is a programming error.
  Ref variable(std::string_view name, unsigned width);

  // --- Unary -------------------------------------------------------------
  Ref bvNot(Ref x);
  Ref logicalNot(Ref x) { return bvNot(boolCast(x)); }
  Ref zext(Ref x, unsigned width);
  Ref sext(Ref x, unsigned width);
  Ref trunc(Ref x, unsigned width);
  // Cast to any width: trunc / zext / identity as appropriate.
  Ref zcast(Ref x, unsigned width);
  // Width-1 view of a term: x itself if already bool, else x != 0.
  Ref boolCast(Ref x);

  // --- Binary ------------------------------------------------------------
  Ref add(Ref a, Ref b);
  Ref sub(Ref a, Ref b);
  Ref mul(Ref a, Ref b);
  Ref udiv(Ref a, Ref b);
  Ref urem(Ref a, Ref b);
  Ref sdiv(Ref a, Ref b);
  Ref srem(Ref a, Ref b);
  Ref bvAnd(Ref a, Ref b);
  Ref bvOr(Ref a, Ref b);
  Ref bvXor(Ref a, Ref b);
  Ref shl(Ref a, Ref b);
  Ref lshr(Ref a, Ref b);
  Ref ashr(Ref a, Ref b);

  // Comparisons (result width 1).
  Ref eq(Ref a, Ref b);
  Ref ne(Ref a, Ref b) { return bvNot(eq(a, b)); }
  Ref ult(Ref a, Ref b);
  Ref ule(Ref a, Ref b);
  Ref ugt(Ref a, Ref b) { return ult(b, a); }
  Ref uge(Ref a, Ref b) { return ule(b, a); }
  Ref slt(Ref a, Ref b);
  Ref sle(Ref a, Ref b);
  Ref sgt(Ref a, Ref b) { return slt(b, a); }
  Ref sge(Ref a, Ref b) { return sle(b, a); }

  // Boolean connectives over width-1 terms.
  Ref logicalAnd(Ref a, Ref b);
  Ref logicalOr(Ref a, Ref b);
  Ref implies(Ref a, Ref b) { return logicalOr(logicalNot(a), b); }

  // --- Ternary / structure ------------------------------------------------
  Ref ite(Ref cond, Ref thenV, Ref elseV);
  Ref concat(Ref hi, Ref lo);
  Ref extract(Ref x, unsigned offset, unsigned width);

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] std::string_view variableName(std::uint64_t index) const;
  [[nodiscard]] std::size_t numNodes() const { return byIndex_.size(); }
  [[nodiscard]] std::size_t numVariables() const { return varNames_.size(); }

  // Arena footprint of the interned node graph (bench_vm / stats).
  [[nodiscard]] std::size_t arenaBytesAllocated() const {
    return arena_.bytesAllocated();
  }
  [[nodiscard]] std::size_t arenaBytesReserved() const {
    return arena_.bytesReserved();
  }
  [[nodiscard]] std::size_t arenaBlocks() const { return arena_.numBlocks(); }

  // Collect the distinct variables appearing in `x` (deterministic order:
  // by variable table index).
  void collectVariables(Ref x, std::vector<Ref>& out) const;

  // --- Snapshot support ----------------------------------------------------
  // The node with interning index `index` (Expr::id() equals the index
  // into the interning log, so the whole DAG can be serialized as that
  // log and every Ref as a u32 index).
  [[nodiscard]] Ref nodeAt(std::size_t index) const;

  // Re-interns one node of a serialized interning log *exactly* — no
  // simplification, no canonical reordering — so that replaying the log
  // in order reproduces every node at its original index. Constants and
  // variables route through their interning builders (which never
  // rewrite); `varName` is only read for kVariable nodes (variables are
  // serialized by name because their aux payload, the name-table index,
  // is reassigned in replay order).
  Ref restoreNode(Kind kind, unsigned width, std::uint64_t aux,
                  std::string_view varName, std::span<const Ref> ops);

 private:
  friend class Expr;

  struct NodeKey {
    Kind kind;
    std::uint8_t width;
    std::uint64_t aux;
    std::array<Ref, 3> ops;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const;
  };

  Ref intern(Kind kind, unsigned width, std::uint64_t aux,
             std::initializer_list<Ref> ops);
  Ref binary(Kind kind, Ref a, Ref b);

  // Simplification entry points, one per operator family; return nullptr
  // when no rewrite applies.
  Ref simplifyBinary(Kind kind, Ref a, Ref b);
  Ref simplifyCompare(Kind kind, Ref a, Ref b);

  // Node storage: bump-pointer arena (stable addresses, no per-node
  // heap allocation) plus the interning log as an index->node table so
  // nodeAt(id) stays O(1). Expr::id() == index into byIndex_, exactly
  // as it was when nodes_ was a deque — the checkpoint expr-log format
  // (snapshot/checkpoint.cpp writeExprTable) depends on that.
  support::Arena arena_;
  std::vector<Ref> byIndex_;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> interned_;
  std::vector<std::string> varNames_;
  std::unordered_map<std::string, Ref> varsByName_;
  Ref true_ = nullptr;
  Ref false_ = nullptr;
};

}  // namespace sde::expr
