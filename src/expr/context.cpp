#include "expr/context.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/hash.hpp"

namespace sde::expr {

namespace {

// Constant folding for binary operators over values already masked to
// `width`. Division semantics follow KLEE/STP: x/0 == all-ones,
// x%0 == x.
std::uint64_t foldBinary(Kind kind, std::uint64_t a, std::uint64_t b,
                         unsigned width) {
  const std::uint64_t ones = maskToWidth(~std::uint64_t{0}, width);
  switch (kind) {
    case Kind::kAdd:
      return maskToWidth(a + b, width);
    case Kind::kSub:
      return maskToWidth(a - b, width);
    case Kind::kMul:
      return maskToWidth(a * b, width);
    case Kind::kUDiv:
      return b == 0 ? ones : a / b;
    case Kind::kURem:
      return b == 0 ? a : a % b;
    case Kind::kSDiv: {
      if (b == 0) return ones;
      const std::int64_t sa = signExtend(a, width);
      const std::int64_t sb = signExtend(b, width);
      // INT_MIN / -1 overflows; wrap like hardware (result INT_MIN).
      if (sb == -1 && sa == signExtend(std::uint64_t{1} << (width - 1), width))
        return maskToWidth(static_cast<std::uint64_t>(sa), width);
      return maskToWidth(static_cast<std::uint64_t>(sa / sb), width);
    }
    case Kind::kSRem: {
      if (b == 0) return a;
      const std::int64_t sa = signExtend(a, width);
      const std::int64_t sb = signExtend(b, width);
      if (sb == -1) return 0;
      return maskToWidth(static_cast<std::uint64_t>(sa % sb), width);
    }
    case Kind::kAnd:
      return a & b;
    case Kind::kOr:
      return a | b;
    case Kind::kXor:
      return a ^ b;
    case Kind::kShl:
      return b >= width ? 0 : maskToWidth(a << b, width);
    case Kind::kLShr:
      return b >= width ? 0 : (a >> b);
    case Kind::kAShr: {
      const std::int64_t sa = signExtend(a, width);
      const unsigned sh = b >= width ? width - 1 : static_cast<unsigned>(b);
      return maskToWidth(static_cast<std::uint64_t>(sa >> sh), width);
    }
    case Kind::kEq:
      return a == b ? 1 : 0;
    case Kind::kUlt:
      return a < b ? 1 : 0;
    case Kind::kUle:
      return a <= b ? 1 : 0;
    case Kind::kSlt:
      return signExtend(a, width) < signExtend(b, width) ? 1 : 0;
    case Kind::kSle:
      return signExtend(a, width) <= signExtend(b, width) ? 1 : 0;
    default:
      SDE_UNREACHABLE("foldBinary on non-binary kind");
  }
}

std::uint64_t structuralHash(Kind kind, unsigned width, std::uint64_t aux,
                             std::span<const Ref> ops) {
  support::Hasher h;
  h.u64(static_cast<std::uint64_t>(kind)).u64(width).u64(aux);
  for (Ref op : ops) h.u64(op->hash());
  return h.digest();
}

}  // namespace

std::size_t Context::NodeKeyHash::operator()(const NodeKey& k) const {
  support::Hasher h;
  h.u64(static_cast<std::uint64_t>(k.kind)).u64(k.width).u64(k.aux);
  for (Ref op : k.ops) h.ptr(op);
  return static_cast<std::size_t>(h.digest());
}

Context::Context() : Context(support::Arena::kDefaultBlockBytes) {}

Context::Context(std::size_t arenaBlockBytes) : arena_(arenaBlockBytes) {
  false_ = constant(0, 1);
  true_ = constant(1, 1);
}

Ref Context::intern(Kind kind, unsigned width, std::uint64_t aux,
                    std::initializer_list<Ref> ops) {
  SDE_ASSERT(width >= 1 && width <= 64, "expression width out of range");
  NodeKey key{kind, static_cast<std::uint8_t>(width), aux,
              {nullptr, nullptr, nullptr}};
  unsigned n = 0;
  for (Ref op : ops) {
    SDE_ASSERT(n < 3, "too many operands");
    key.ops[n++] = op;
  }
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;

  Expr& node = *arena_.create<Expr>(Expr::PassKey{});
  byIndex_.push_back(&node);
  node.kind_ = kind;
  node.width_ = static_cast<std::uint8_t>(width);
  node.numOps_ = static_cast<std::uint8_t>(n);
  node.id_ = static_cast<std::uint32_t>(byIndex_.size() - 1);
  node.aux_ = aux;
  node.ops_ = key.ops;
  node.ctx_ = this;
  // Variables hash by NAME, not by table index: the index depends on
  // interning order, which differs between engine runs, while the
  // cross-algorithm equivalence oracle compares hashes across runs.
  node.hash_ = kind == Kind::kVariable
                   ? support::Hasher()
                         .u64(static_cast<std::uint64_t>(kind))
                         .u64(width)
                         .str(varNames_[static_cast<std::size_t>(aux)])
                         .digest()
                   : structuralHash(kind, width, aux, node.operands());
  interned_.emplace(key, &node);
  return &node;
}

Ref Context::constant(std::uint64_t value, unsigned width) {
  return intern(Kind::kConstant, width, maskToWidth(value, width), {});
}

Ref Context::variable(std::string_view name, unsigned width) {
  if (auto it = varsByName_.find(std::string(name)); it != varsByName_.end()) {
    SDE_ASSERT(it->second->width() == width,
               "variable re-declared with a different width");
    return it->second;
  }
  const std::uint64_t index = varNames_.size();
  varNames_.emplace_back(name);
  Ref node = intern(Kind::kVariable, width, index, {});
  varsByName_.emplace(std::string(name), node);
  return node;
}

Ref Context::nodeAt(std::size_t index) const {
  SDE_ASSERT(index < byIndex_.size(), "expression node index out of range");
  return byIndex_[index];
}

Ref Context::restoreNode(Kind kind, unsigned width, std::uint64_t aux,
                         std::string_view varName,
                         std::span<const Ref> ops) {
  if (kind == Kind::kConstant) return constant(aux, width);
  if (kind == Kind::kVariable) return variable(varName, width);
  switch (ops.size()) {
    case 1:
      return intern(kind, width, aux, {ops[0]});
    case 2:
      return intern(kind, width, aux, {ops[0], ops[1]});
    case 3:
      return intern(kind, width, aux, {ops[0], ops[1], ops[2]});
    default:
      SDE_UNREACHABLE("restoreNode with invalid operand count");
  }
}

std::string_view Context::variableName(std::uint64_t index) const {
  SDE_ASSERT(index < varNames_.size(), "variable index out of range");
  return varNames_[static_cast<std::size_t>(index)];
}

// --- Unary -----------------------------------------------------------------

Ref Context::bvNot(Ref x) {
  if (x->isConstant())
    return constant(maskToWidth(~x->value(), x->width()), x->width());
  if (x->kind() == Kind::kNot) return x->operand(0);  // ~~x == x
  return intern(Kind::kNot, x->width(), 0, {x});
}

Ref Context::zext(Ref x, unsigned width) {
  SDE_ASSERT(width >= x->width(), "zext must not narrow");
  if (width == x->width()) return x;
  if (x->isConstant()) return constant(x->value(), width);
  return intern(Kind::kZExt, width, 0, {x});
}

Ref Context::sext(Ref x, unsigned width) {
  SDE_ASSERT(width >= x->width(), "sext must not narrow");
  if (width == x->width()) return x;
  if (x->isConstant())
    return constant(
        maskToWidth(static_cast<std::uint64_t>(signExtend(x->value(),
                                                          x->width())),
                    width),
        width);
  return intern(Kind::kSExt, width, 0, {x});
}

Ref Context::trunc(Ref x, unsigned width) {
  SDE_ASSERT(width <= x->width(), "trunc must not widen");
  if (width == x->width()) return x;
  if (x->isConstant()) return constant(x->value(), width);
  // trunc(zext(y)) with width(y) >= target: keep truncating y directly.
  if ((x->kind() == Kind::kZExt || x->kind() == Kind::kSExt) &&
      x->operand(0)->width() >= width)
    return trunc(x->operand(0), width);
  return intern(Kind::kTrunc, width, 0, {x});
}

Ref Context::zcast(Ref x, unsigned width) {
  if (width == x->width()) return x;
  return width > x->width() ? zext(x, width) : trunc(x, width);
}

Ref Context::boolCast(Ref x) {
  if (x->width() == 1) return x;
  return ne(x, constant(0, x->width()));
}

// --- Binary ----------------------------------------------------------------

Ref Context::binary(Kind kind, Ref a, Ref b) {
  SDE_ASSERT(a->width() == b->width(), "binary operand width mismatch");
  const unsigned width = isComparison(kind) ? 1 : a->width();
  if (a->isConstant() && b->isConstant())
    return constant(foldBinary(kind, a->value(), b->value(), a->width()),
                    width);
  if (Ref s = isComparison(kind) ? simplifyCompare(kind, a, b)
                                 : simplifyBinary(kind, a, b))
    return s;
  // Canonical operand order for commutative operators: constants first,
  // then by structural hash. Hash order (not interning order) keeps the
  // canonical form identical across engine runs, which the cross-
  // algorithm equivalence checks rely on.
  if (isCommutative(kind)) {
    const bool swap =
        (b->isConstant() && !a->isConstant()) ||
        (a->isConstant() == b->isConstant() &&
         (b->hash() < a->hash() || (b->hash() == a->hash() && b->id() < a->id())));
    if (swap) std::swap(a, b);
  }
  return intern(kind, width, 0, {a, b});
}

Ref Context::simplifyBinary(Kind kind, Ref a, Ref b) {
  const unsigned w = a->width();
  const Ref zero = constant(0, w);
  switch (kind) {
    case Kind::kAdd:
      if (a->isConstant() && a->value() == 0) return b;
      if (b->isConstant() && b->value() == 0) return a;
      break;
    case Kind::kSub:
      if (b->isConstant() && b->value() == 0) return a;
      if (a == b) return zero;
      break;
    case Kind::kMul:
      if (a->isConstant()) {
        if (a->value() == 0) return zero;
        if (a->value() == 1) return b;
      }
      if (b->isConstant()) {
        if (b->value() == 0) return zero;
        if (b->value() == 1) return a;
      }
      break;
    case Kind::kAnd:
      if (a == b) return a;
      if (a->isConstant()) {
        if (a->value() == 0) return zero;
        if (a->value() == maskToWidth(~std::uint64_t{0}, w)) return b;
      }
      if (b->isConstant()) {
        if (b->value() == 0) return zero;
        if (b->value() == maskToWidth(~std::uint64_t{0}, w)) return a;
      }
      break;
    case Kind::kOr:
      if (a == b) return a;
      if (a->isConstant()) {
        if (a->value() == 0) return b;
        if (a->value() == maskToWidth(~std::uint64_t{0}, w)) return a;
      }
      if (b->isConstant()) {
        if (b->value() == 0) return a;
        if (b->value() == maskToWidth(~std::uint64_t{0}, w)) return b;
      }
      break;
    case Kind::kXor:
      if (a == b) return zero;
      if (a->isConstant() && a->value() == 0) return b;
      if (b->isConstant() && b->value() == 0) return a;
      break;
    case Kind::kShl:
    case Kind::kLShr:
    case Kind::kAShr:
      if (b->isConstant() && b->value() == 0) return a;
      if (a->isConstant() && a->value() == 0) return zero;
      break;
    case Kind::kUDiv:
    case Kind::kSDiv:
      if (b->isConstant() && b->value() == 1) return a;
      break;
    case Kind::kURem:
      if (b->isConstant() && b->value() == 1) return zero;
      break;
    default:
      break;
  }
  return nullptr;
}

Ref Context::simplifyCompare(Kind kind, Ref a, Ref b) {
  switch (kind) {
    case Kind::kEq:
      if (a == b) return true_;
      // (x == true) -> x ; (x == false) -> !x for boolean terms.
      if (a->width() == 1) {
        if (a->isTrue()) return b;
        if (b->isTrue()) return a;
        if (a->isFalse()) return bvNot(b);
        if (b->isFalse()) return bvNot(a);
      }
      // Two distinct constants were already folded in binary().
      break;
    case Kind::kUlt:
      if (a == b) return false_;
      if (b->isConstant() && b->value() == 0) return false_;  // x < 0 (unsig.)
      if (a->isConstant() &&
          a->value() == maskToWidth(~std::uint64_t{0}, a->width()))
        return false_;  // UINT_MAX < x
      break;
    case Kind::kUle:
      if (a == b) return true_;
      if (a->isConstant() && a->value() == 0) return true_;  // 0 <= x
      break;
    case Kind::kSlt:
      if (a == b) return false_;
      break;
    case Kind::kSle:
      if (a == b) return true_;
      break;
    default:
      break;
  }
  return nullptr;
}

Ref Context::add(Ref a, Ref b) { return binary(Kind::kAdd, a, b); }
Ref Context::sub(Ref a, Ref b) { return binary(Kind::kSub, a, b); }
Ref Context::mul(Ref a, Ref b) { return binary(Kind::kMul, a, b); }
Ref Context::udiv(Ref a, Ref b) { return binary(Kind::kUDiv, a, b); }
Ref Context::urem(Ref a, Ref b) { return binary(Kind::kURem, a, b); }
Ref Context::sdiv(Ref a, Ref b) { return binary(Kind::kSDiv, a, b); }
Ref Context::srem(Ref a, Ref b) { return binary(Kind::kSRem, a, b); }
Ref Context::bvAnd(Ref a, Ref b) { return binary(Kind::kAnd, a, b); }
Ref Context::bvOr(Ref a, Ref b) { return binary(Kind::kOr, a, b); }
Ref Context::bvXor(Ref a, Ref b) { return binary(Kind::kXor, a, b); }
Ref Context::shl(Ref a, Ref b) { return binary(Kind::kShl, a, b); }
Ref Context::lshr(Ref a, Ref b) { return binary(Kind::kLShr, a, b); }
Ref Context::ashr(Ref a, Ref b) { return binary(Kind::kAShr, a, b); }
Ref Context::eq(Ref a, Ref b) { return binary(Kind::kEq, a, b); }
Ref Context::ult(Ref a, Ref b) { return binary(Kind::kUlt, a, b); }
Ref Context::ule(Ref a, Ref b) { return binary(Kind::kUle, a, b); }
Ref Context::slt(Ref a, Ref b) { return binary(Kind::kSlt, a, b); }
Ref Context::sle(Ref a, Ref b) { return binary(Kind::kSle, a, b); }

Ref Context::logicalAnd(Ref a, Ref b) {
  return bvAnd(boolCast(a), boolCast(b));
}

Ref Context::logicalOr(Ref a, Ref b) { return bvOr(boolCast(a), boolCast(b)); }

Ref Context::ite(Ref cond, Ref thenV, Ref elseV) {
  SDE_ASSERT(cond->width() == 1, "ite condition must be boolean");
  SDE_ASSERT(thenV->width() == elseV->width(), "ite arm width mismatch");
  if (cond->isTrue()) return thenV;
  if (cond->isFalse()) return elseV;
  if (thenV == elseV) return thenV;
  // ite(c, 1, 0) over booleans is just c; ite(c, 0, 1) is !c.
  if (thenV->width() == 1) {
    if (thenV->isTrue() && elseV->isFalse()) return cond;
    if (thenV->isFalse() && elseV->isTrue()) return bvNot(cond);
  }
  return intern(Kind::kIte, thenV->width(), 0, {cond, thenV, elseV});
}

Ref Context::concat(Ref hi, Ref lo) {
  const unsigned width = hi->width() + lo->width();
  SDE_ASSERT(width <= 64, "concat result too wide");
  if (hi->isConstant() && lo->isConstant())
    return constant((hi->value() << lo->width()) | lo->value(), width);
  if (hi->isConstant() && hi->value() == 0) return zext(lo, width);
  return intern(Kind::kConcat, width, 0, {hi, lo});
}

Ref Context::extract(Ref x, unsigned offset, unsigned width) {
  SDE_ASSERT(offset + width <= x->width(), "extract out of range");
  if (offset == 0 && width == x->width()) return x;
  if (x->isConstant()) return constant(x->value() >> offset, width);
  if (x->kind() == Kind::kConcat) {
    Ref lo = x->operand(1);
    Ref hi = x->operand(0);
    if (offset + width <= lo->width()) return extract(lo, offset, width);
    if (offset >= lo->width())
      return extract(hi, offset - lo->width(), width);
  }
  if (offset == 0 && x->kind() == Kind::kZExt &&
      x->operand(0)->width() == width)
    return x->operand(0);
  return intern(Kind::kExtract, width, offset, {x});
}

void Context::collectVariables(Ref x, std::vector<Ref>& out) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{x};
  std::vector<Ref> vars;
  while (!stack.empty()) {
    Ref node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    if (node->isVariable()) vars.push_back(node);
    for (Ref op : node->operands()) stack.push_back(op);
  }
  std::sort(vars.begin(), vars.end(),
            [](Ref a, Ref b) { return a->id() < b->id(); });
  out.insert(out.end(), vars.begin(), vars.end());
}

}  // namespace sde::expr
