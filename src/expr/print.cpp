#include "expr/print.hpp"

#include <sstream>

namespace sde::expr {

namespace {

void printRec(Ref x, std::ostringstream& os) {
  switch (x->kind()) {
    case Kind::kConstant:
      os << x->value();
      if (x->width() != 1) os << "w" << x->width();
      return;
    case Kind::kVariable:
      os << "(var " << x->name() << ")";
      return;
    case Kind::kExtract:
      os << "(extract w" << x->width() << " @" << x->extractOffset() << " ";
      printRec(x->operand(0), os);
      os << ")";
      return;
    default: {
      os << "(" << kindName(x->kind()) << " w" << x->width();
      for (Ref op : x->operands()) {
        os << " ";
        printRec(op, os);
      }
      os << ")";
      return;
    }
  }
}

}  // namespace

std::string toString(Ref x) {
  std::ostringstream os;
  printRec(x, os);
  return os.str();
}

}  // namespace sde::expr
