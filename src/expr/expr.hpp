// Symbolic expression DAG.
//
// Expressions are immutable, hash-consed bitvector terms of width 1..64.
// They are created exclusively through expr::Context (see context.hpp),
// which interns structurally equal nodes so that pointer equality is
// structural equality. This mirrors the expression layer a symbolic
// virtual machine such as KLEE builds over STP terms; the SDE mapping
// algorithms themselves never look inside expressions (paper §III-D:
// "the state mapping algorithm has neither access to states'
// configurations, nor to the packets' content").
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "support/assert.hpp"

namespace sde::expr {

class Context;

enum class Kind : std::uint8_t {
  kConstant,
  kVariable,
  // Unary.
  kNot,    // bitwise complement; on width-1 terms this is logical negation
  kZExt,   // zero extend to a wider width
  kSExt,   // sign extend to a wider width
  kTrunc,  // truncate to a narrower width
  // Binary, operands and result share one width.
  kAdd,
  kSub,
  kMul,
  kUDiv,  // division by zero yields all-ones, like STP/KLEE semantics
  kURem,  // remainder by zero yields the dividend
  kSDiv,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,   // shift amounts >= width yield 0
  kLShr,  // shift amounts >= width yield 0
  kAShr,  // shift amounts >= width replicate the sign bit
  // Comparisons, result width 1.
  kEq,
  kUlt,
  kUle,
  kSlt,
  kSle,
  // Ternary: Ite(cond /*width 1*/, thenV, elseV).
  kIte,
  // Structure.
  kConcat,   // Concat(hi, lo), width = width(hi) + width(lo) <= 64
  kExtract,  // Extract(x, offset) with result width stored in the node
};

[[nodiscard]] std::string_view kindName(Kind kind);
[[nodiscard]] bool isComparison(Kind kind);
[[nodiscard]] bool isCommutative(Kind kind);

// One interned DAG node. Instances live for the lifetime of their
// Context; user code holds them as `Ref` (a raw pointer) and treats them
// as values.
class Expr {
 public:
  using Ref = const Expr*;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] unsigned width() const { return width_; }

  // Sequential interning index; deterministic given deterministic
  // construction order. Used for canonical operand ordering only.
  [[nodiscard]] std::uint32_t id() const { return id_; }

  // Structural hash (independent of interning order).
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

  [[nodiscard]] bool isConstant() const { return kind_ == Kind::kConstant; }
  [[nodiscard]] bool isVariable() const { return kind_ == Kind::kVariable; }
  [[nodiscard]] bool isBool() const { return width_ == 1; }

  // Constant payload, already masked to width. Valid for kConstant.
  [[nodiscard]] std::uint64_t value() const {
    SDE_ASSERT(kind_ == Kind::kConstant, "value() on non-constant");
    return aux_;
  }
  [[nodiscard]] bool isTrue() const {
    return kind_ == Kind::kConstant && width_ == 1 && aux_ == 1;
  }
  [[nodiscard]] bool isFalse() const {
    return kind_ == Kind::kConstant && width_ == 1 && aux_ == 0;
  }

  // Variable name. Valid for kVariable.
  [[nodiscard]] std::string_view name() const;

  // Extract offset in bits. Valid for kExtract.
  [[nodiscard]] unsigned extractOffset() const {
    SDE_ASSERT(kind_ == Kind::kExtract, "extractOffset() on non-extract");
    return static_cast<unsigned>(aux_);
  }

  [[nodiscard]] unsigned numOperands() const { return numOps_; }
  [[nodiscard]] Ref operand(unsigned i) const {
    SDE_ASSERT(i < numOps_, "operand index out of range");
    return ops_[i];
  }
  [[nodiscard]] std::span<const Ref> operands() const {
    return {ops_.data(), numOps_};
  }

 private:
  friend class Context;
  struct PassKey {};

 public:
  // Constructible only by Context (passkey idiom); containers need a
  // public constructor signature.
  explicit Expr(PassKey) {}

 private:
  Kind kind_ = Kind::kConstant;
  std::uint8_t width_ = 1;
  std::uint8_t numOps_ = 0;
  std::uint32_t id_ = 0;
  // kConstant: value; kVariable: variable table index; kExtract: offset.
  std::uint64_t aux_ = 0;
  std::uint64_t hash_ = 0;
  std::array<Ref, 3> ops_ = {nullptr, nullptr, nullptr};
  const Context* ctx_ = nullptr;
};

using Ref = Expr::Ref;

// Masks `v` to the low `width` bits.
[[nodiscard]] constexpr std::uint64_t maskToWidth(std::uint64_t v,
                                                  unsigned width) {
  return width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
}

// Sign-extends the low `width` bits of `v` to 64 bits (as signed value).
[[nodiscard]] constexpr std::int64_t signExtend(std::uint64_t v,
                                                unsigned width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t signBit = std::uint64_t{1} << (width - 1);
  const std::uint64_t masked = maskToWidth(v, width);
  return static_cast<std::int64_t>((masked ^ signBit) - signBit);
}

}  // namespace sde::expr
