// S-expression rendering of expressions, for diagnostics, test-case
// dumps, and golden tests of the simplifier.
#pragma once

#include <string>

#include "expr/expr.hpp"

namespace sde::expr {

// Renders e.g. "(add w8 (var x) 3)". Constants print as decimal; shared
// subtrees are printed in full (expressions in this codebase are small).
[[nodiscard]] std::string toString(Ref x);

}  // namespace sde::expr
