// Concrete evaluation of expressions under a variable assignment.
// Used by the solver's model search, by test-case replay, and by
// property tests that cross-check the simplifier against brute force.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "expr/expr.hpp"

namespace sde::expr {

// Maps variable nodes to concrete values (masked to the variable width
// on insertion by the helpers below).
class Assignment {
 public:
  void set(Ref var, std::uint64_t value) {
    SDE_ASSERT(var->isVariable(), "Assignment::set on non-variable");
    values_[var] = maskToWidth(value, var->width());
  }
  [[nodiscard]] std::optional<std::uint64_t> get(Ref var) const {
    auto it = values_.find(var);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  void erase(Ref var) { values_.erase(var); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::unordered_map<Ref, std::uint64_t>& entries() const {
    return values_;
  }

 private:
  std::unordered_map<Ref, std::uint64_t> values_;
};

// Evaluates `x` under `assignment`. Every variable in `x` must be bound;
// unbound variables are a programming error (the solver always completes
// assignments before evaluating).
[[nodiscard]] std::uint64_t evaluate(Ref x, const Assignment& assignment);

// Partial evaluation: returns nullopt as soon as an unbound variable
// influences the result. (Ite short-circuits on a decided condition.)
[[nodiscard]] std::optional<std::uint64_t> tryEvaluate(
    Ref x, const Assignment& assignment);

}  // namespace sde::expr
