// Metric recording for the evaluation harness: samples (wall time,
// virtual time, state count, simulated memory, group count) over an
// engine run — the raw series behind the paper's Figure 10 plots and
// Table I rows.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "sde/engine.hpp"
#include "trace/csv.hpp"

namespace sde::trace {

struct MetricSample {
  double wallSeconds = 0;
  std::uint64_t virtualTime = 0;
  std::uint64_t states = 0;
  std::uint64_t memoryBytes = 0;
  std::uint64_t groups = 0;  // dscenarios (COB) / dstates (COW, SDS)
  std::uint64_t events = 0;
  std::uint64_t merges = 0;         // engine.merges (0 unless --merge)
  std::uint64_t loopSummaries = 0;  // engine.loop_summaries
};

// The CSV row schema: one entry per emitted column, in order, rendered
// through the shared schema-driven writer (trace/csv.hpp).
using MetricColumn = CsvColumn<MetricSample>;
[[nodiscard]] std::span<const MetricColumn> metricCsvSchema();

class MetricsRecorder {
 public:
  // Sampler to install via Engine::setSampler. The recorder must outlive
  // the engine run.
  [[nodiscard]] Engine::Sampler sampler();

  [[nodiscard]] const std::vector<MetricSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const MetricSample& last() const;

  // CSV whose columns follow metricCsvSchema() (series name first).
  // seriesName lands verbatim in the first column, so names containing
  // commas or newlines are rejected (SDE_ASSERT).
  void writeCsv(std::ostream& os, std::string_view seriesName) const;

  void clear() { samples_.clear(); }

 private:
  std::vector<MetricSample> samples_;
};

// Merges per-worker metric series into one deterministic timeline.
//
// Sort key and tie-breaks: samples are ordered by virtualTime first;
// samples with equal virtualTime by their events count; full ties
// (equal virtualTime AND equal events) by series index — so when two
// workers sample the same instant, the lower-indexed series
// contributes first. The sort is stable, so samples of ONE series that
// tie on the whole key (e.g. repeated end-of-run samples) keep their
// original recording order. Wall-clock stamps are carried through but
// deliberately never used as a sort key: they vary across runs while
// the virtual-time axis does not, and the stitched timeline must be
// byte-identical for any worker count.
[[nodiscard]] std::vector<MetricSample> stitchSamples(
    std::span<const std::vector<MetricSample>> series);

}  // namespace sde::trace
