// Metric recording for the evaluation harness: samples (wall time,
// virtual time, state count, simulated memory, group count) over an
// engine run — the raw series behind the paper's Figure 10 plots and
// Table I rows.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "sde/engine.hpp"

namespace sde::trace {

struct MetricSample {
  double wallSeconds = 0;
  std::uint64_t virtualTime = 0;
  std::uint64_t states = 0;
  std::uint64_t memoryBytes = 0;
  std::uint64_t groups = 0;  // dscenarios (COB) / dstates (COW, SDS)
  std::uint64_t events = 0;
};

class MetricsRecorder {
 public:
  // Sampler to install via Engine::setSampler. The recorder must outlive
  // the engine run.
  [[nodiscard]] Engine::Sampler sampler();

  [[nodiscard]] const std::vector<MetricSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const MetricSample& last() const;

  // CSV with header: wall_s,virtual_t,states,memory_bytes,groups,events.
  void writeCsv(std::ostream& os, std::string_view seriesName) const;

  void clear() { samples_.clear(); }

 private:
  std::vector<MetricSample> samples_;
};

// Merges per-worker metric series into one deterministic timeline,
// ordered by (virtualTime, events, series index) — wall-clock stamps
// are kept but deliberately not used as a sort key, since they vary
// across runs while the virtual-time axis does not.
[[nodiscard]] std::vector<MetricSample> stitchSamples(
    std::span<const std::vector<MetricSample>> series);

}  // namespace sde::trace
