#include "trace/scenario.hpp"

#include <cmath>

namespace sde::trace {

ScenarioResult summarize(Engine& engine, RunOutcome outcome) {
  ScenarioResult result;
  result.outcome = outcome;
  result.wallSeconds = engine.wallSeconds();
  result.states = engine.numStates();
  result.memoryBytes = engine.simulatedMemoryBytes();
  result.groups = engine.mapper().numGroups();
  result.events = engine.eventsProcessed();
  result.packets = engine.stats().get("engine.packets");
  result.duplicatesStrict =
      findDuplicates(engine.states(), DuplicateMode::kStrict);
  result.duplicatesContent =
      findDuplicates(engine.states(), DuplicateMode::kContent);
  return result;
}

CollectScenario::CollectScenario(CollectScenarioConfig config)
    : config_(std::move(config)), program_(rime::buildCollectApp(config_.app)) {
  net::Topology topology =
      net::Topology::grid(config_.gridWidth, config_.gridHeight);
  // Figure 9: sink in the top-left corner (node 0), source in the
  // bottom-right corner.
  const net::NodeId sink = 0;
  source_ = topology.numNodes() - 1;
  const net::RoutingTable routing = net::RoutingTable::towards(topology, sink);

  plan_ = std::make_unique<os::NetworkPlan>(topology);
  plan_->runEverywhere(program_);
  engine_ = std::make_unique<Engine>(*plan_, config_.mapper, config_.engine);

  for (const rime::BootAssignment& boot : rime::collectBootGlobals(
           topology, routing, source_, config_.sendInterval))
    engine_->setBootGlobal(boot.node, boot.slot, boot.value);

  // §IV-A: "nodes on the data path towards the destination and their
  // neighbors should symbolically drop one packet".
  auto failures = std::make_unique<net::CompositeFailureModel>();
  const std::vector<net::NodeId> failureNodes =
      routing.pathAndNeighbors(topology, source_);
  if (config_.symbolicDrops)
    failures->add(std::make_unique<net::SymbolicDropModel>(
        failureNodes, config_.maxDropsPerNode));
  if (config_.symbolicDuplicates)
    failures->add(std::make_unique<net::SymbolicDuplicateModel>(
        failureNodes, config_.maxDropsPerNode));
  if (config_.symbolicReboots)
    failures->add(std::make_unique<net::SymbolicRebootModel>(
        failureNodes, config_.maxDropsPerNode));
  engine_->setFailureModel(std::move(failures));
  engine_->setSampler(metrics_.sampler());
}

ScenarioResult CollectScenario::run() {
  const RunOutcome outcome = engine_->run(config_.simulationTime);
  return summarize(*engine_, outcome);
}

FloodScenario::FloodScenario(FloodScenarioConfig config)
    : config_(std::move(config)), program_(rime::buildFloodApp()) {
  net::Topology topology =
      config_.fullMesh
          ? net::Topology::fullMesh(config_.nodes)
          : net::Topology::grid(
                static_cast<std::uint32_t>(std::lround(
                    std::sqrt(static_cast<double>(config_.nodes)))),
                static_cast<std::uint32_t>(std::lround(
                    std::sqrt(static_cast<double>(config_.nodes)))));
  const net::NodeId source = topology.numNodes() - 1;

  plan_ = std::make_unique<os::NetworkPlan>(topology);
  plan_->runEverywhere(program_);
  engine_ = std::make_unique<Engine>(*plan_, config_.mapper, config_.engine);

  for (const rime::BootAssignment& boot :
       rime::floodBootGlobals(topology, source, config_.sendInterval))
    engine_->setBootGlobal(boot.node, boot.slot, boot.value);

  if (config_.symbolicDrops) {
    std::vector<net::NodeId> everyone(topology.numNodes());
    for (net::NodeId n = 0; n < topology.numNodes(); ++n) everyone[n] = n;
    engine_->setFailureModel(std::make_unique<net::SymbolicDropModel>(
        everyone, config_.maxDropsPerNode));
  }
  engine_->setSampler(metrics_.sampler());
}

ScenarioResult FloodScenario::run() {
  const RunOutcome outcome = engine_->run(config_.simulationTime);
  return summarize(*engine_, outcome);
}

}  // namespace sde::trace
