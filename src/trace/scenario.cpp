#include "trace/scenario.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "snapshot/manifest.hpp"

namespace sde::trace {

bool attachCheckpointing(Engine& engine, const std::filesystem::path& file,
                         bool resume, std::uint64_t everyEvents) {
  if (file.has_parent_path())
    std::filesystem::create_directories(file.parent_path());
  bool restored = false;
  if (resume && std::filesystem::exists(file)) {
    std::ifstream in(file, std::ios::binary);
    engine.restore(in);
    restored = true;
  }
  engine.setCheckpointSink(
      [file](const Engine& e) {
        snapshot::atomicWriteFile(
            file, [&](std::ostream& os) { e.checkpoint(os); });
      },
      everyEvents);
  return restored;
}

ScenarioResult summarize(Engine& engine, RunOutcome outcome) {
  ScenarioResult result;
  result.outcome = outcome;
  result.wallSeconds = engine.wallSeconds();
  result.states = engine.numStates();
  result.memoryBytes = engine.simulatedMemoryBytes();
  result.peakMemoryBytes = engine.stats().get("engine.peak_memory_bytes");
  result.groups = engine.mapper().numGroups();
  result.events = engine.eventsProcessed();
  result.packets = engine.stats().get("engine.packets");
  result.merges = engine.stats().get("engine.merges");
  result.loopSummaries = engine.stats().get("engine.loop_summaries");
  result.duplicatesStrict =
      findDuplicates(engine.states(), DuplicateMode::kStrict);
  result.duplicatesContent =
      findDuplicates(engine.states(), DuplicateMode::kContent);
  return result;
}

CollectScenario::CollectScenario(CollectScenarioConfig config)
    : config_(std::move(config)), program_(rime::buildCollectApp(config_.app)) {
  net::Topology topology =
      net::Topology::grid(config_.gridWidth, config_.gridHeight);
  // Figure 9: sink in the top-left corner (node 0), source in the
  // bottom-right corner.
  const net::NodeId sink = 0;
  source_ = topology.numNodes() - 1;
  const net::RoutingTable routing = net::RoutingTable::towards(topology, sink);
  route_ = routing.path(source_);
  // §IV-A: "nodes on the data path towards the destination and their
  // neighbors should symbolically drop one packet".
  failureNodes_ = routing.pathAndNeighbors(topology, source_);
  bootGlobals_ =
      rime::collectBootGlobals(topology, routing, source_, config_.sendInterval);

  plan_ = std::make_unique<os::NetworkPlan>(topology);
  plan_->runEverywhere(program_);
  engine_ = makeEngine();
  engine_->setSampler(metrics_.sampler());
}

std::unique_ptr<Engine> CollectScenario::makeEngine() const {
  auto engine = std::make_unique<Engine>(*plan_, config_.mapper, config_.engine);
  for (const rime::BootAssignment& boot : bootGlobals_)
    engine->setBootGlobal(boot.node, boot.slot, boot.value);
  auto failures = std::make_unique<net::CompositeFailureModel>();
  if (config_.symbolicDrops)
    failures->add(std::make_unique<net::SymbolicDropModel>(
        failureNodes_, config_.maxDropsPerNode));
  if (config_.symbolicDuplicates)
    failures->add(std::make_unique<net::SymbolicDuplicateModel>(
        failureNodes_, config_.maxDropsPerNode));
  if (config_.symbolicReboots)
    failures->add(std::make_unique<net::SymbolicRebootModel>(
        failureNodes_, config_.maxDropsPerNode));
  engine->setFailureModel(std::move(failures));
  return engine;
}

std::vector<std::string> CollectScenario::partitionVariables(
    std::size_t maxVariables) const {
  std::vector<std::string> variables;
  if (!config_.symbolicDrops) return variables;
  // route_[0] is the source, which transmits but never receives data
  // packets — its drop decision would rarely be reached.
  for (std::size_t hop = 1;
       hop < route_.size() && variables.size() < maxVariables; ++hop) {
    variables.push_back("n" + std::to_string(route_[hop]) + "." +
                        net::SymbolicDropModel::kLabel + ".0");
  }
  return variables;
}

EngineFactory CollectScenario::engineFactory() const {
  return [this](const PartitionJob&) { return makeEngine(); };
}

ScenarioResult CollectScenario::run() {
  const RunOutcome outcome = engine_->run(config_.simulationTime);
  return summarize(*engine_, outcome);
}

FloodScenario::FloodScenario(FloodScenarioConfig config)
    : config_(std::move(config)), program_(rime::buildFloodApp()) {
  net::Topology topology =
      config_.fullMesh
          ? net::Topology::fullMesh(config_.nodes)
          : net::Topology::grid(
                static_cast<std::uint32_t>(std::lround(
                    std::sqrt(static_cast<double>(config_.nodes)))),
                static_cast<std::uint32_t>(std::lround(
                    std::sqrt(static_cast<double>(config_.nodes)))));
  const net::NodeId source = topology.numNodes() - 1;

  plan_ = std::make_unique<os::NetworkPlan>(topology);
  plan_->runEverywhere(program_);
  engine_ = std::make_unique<Engine>(*plan_, config_.mapper, config_.engine);

  for (const rime::BootAssignment& boot :
       rime::floodBootGlobals(topology, source, config_.sendInterval))
    engine_->setBootGlobal(boot.node, boot.slot, boot.value);

  if (config_.symbolicDrops) {
    std::vector<net::NodeId> everyone(topology.numNodes());
    for (net::NodeId n = 0; n < topology.numNodes(); ++n) everyone[n] = n;
    engine_->setFailureModel(std::make_unique<net::SymbolicDropModel>(
        everyone, config_.maxDropsPerNode));
  }
  engine_->setSampler(metrics_.sampler());
}

ScenarioResult FloodScenario::run() {
  const RunOutcome outcome = engine_->run(config_.simulationTime);
  return summarize(*engine_, outcome);
}

std::string encodeCollectScenarioSpec(const CollectScenarioConfig& config,
                                      std::size_t numPartitionVariables) {
  std::ostringstream os;
  os << "collect/1"
     << " grid=" << config.gridWidth << "x" << config.gridHeight
     << " send=" << config.sendInterval << " sim=" << config.simulationTime
     << " mapper=" << mapperKindName(config.mapper)
     << " drops=" << (config.symbolicDrops ? 1 : 0)
     << " maxdrops=" << config.maxDropsPerNode
     << " dups=" << (config.symbolicDuplicates ? 1 : 0)
     << " reboots=" << (config.symbolicReboots ? 1 : 0)
     << " faildup=" << (config.app.failOnDuplicateSeqno ? 1 : 0)
     << " faillost=" << (config.app.failOnLostSeqno ? 1 : 0)
     << " latency=" << config.engine.linkLatency
     << " maxstates=" << config.engine.maxStates
     << " maxmem=" << config.engine.maxSimulatedMemoryBytes
     << " maxevents=" << config.engine.maxEvents
     << " sample=" << config.engine.sampleEveryEvents
     << " adaptive=" << (config.engine.adaptiveSampling ? 1 : 0)
     << " merge=" << (config.engine.mergeStates ? 1 : 0)
     << " loopsum=" << (config.engine.loopSummarize ? 1 : 0)
     << " vars=" << numPartitionVariables;
  return os.str();
}

std::optional<DecodedCollectSpec> decodeCollectScenarioSpec(
    const std::string& spec) {
  std::istringstream is(spec);
  std::string tag;
  is >> tag;
  if (tag != "collect/1") return std::nullopt;

  DecodedCollectSpec decoded;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "grid") {
        const std::size_t x = value.find('x');
        if (x == std::string::npos) return std::nullopt;
        decoded.config.gridWidth =
            static_cast<std::uint32_t>(std::stoul(value.substr(0, x)));
        decoded.config.gridHeight =
            static_cast<std::uint32_t>(std::stoul(value.substr(x + 1)));
      } else if (key == "send") {
        decoded.config.sendInterval = std::stoull(value);
      } else if (key == "sim") {
        decoded.config.simulationTime = std::stoull(value);
      } else if (key == "mapper") {
        if (value == "COB")
          decoded.config.mapper = MapperKind::kCob;
        else if (value == "COW")
          decoded.config.mapper = MapperKind::kCow;
        else if (value == "SDS")
          decoded.config.mapper = MapperKind::kSds;
        else
          return std::nullopt;
      } else if (key == "drops") {
        decoded.config.symbolicDrops = value != "0";
      } else if (key == "maxdrops") {
        decoded.config.maxDropsPerNode =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "dups") {
        decoded.config.symbolicDuplicates = value != "0";
      } else if (key == "reboots") {
        decoded.config.symbolicReboots = value != "0";
      } else if (key == "faildup") {
        decoded.config.app.failOnDuplicateSeqno = value != "0";
      } else if (key == "faillost") {
        decoded.config.app.failOnLostSeqno = value != "0";
      } else if (key == "latency") {
        decoded.config.engine.linkLatency = std::stoull(value);
      } else if (key == "maxstates") {
        decoded.config.engine.maxStates = std::stoull(value);
      } else if (key == "maxmem") {
        decoded.config.engine.maxSimulatedMemoryBytes = std::stoull(value);
      } else if (key == "maxevents") {
        decoded.config.engine.maxEvents = std::stoull(value);
      } else if (key == "sample") {
        decoded.config.engine.sampleEveryEvents = std::stoull(value);
      } else if (key == "adaptive") {
        decoded.config.engine.adaptiveSampling = value != "0";
      } else if (key == "merge") {
        decoded.config.engine.mergeStates = value != "0";
      } else if (key == "loopsum") {
        decoded.config.engine.loopSummarize = value != "0";
      } else if (key == "vars") {
        decoded.numPartitionVariables = std::stoull(value);
      } else {
        return std::nullopt;  // unknown key: not a spec this build wrote
      }
    } catch (const std::exception&) {
      return std::nullopt;  // malformed number
    }
  }
  return decoded;
}

PartitionedCollectResult runCollectPartitioned(
    const CollectScenarioConfig& config, ParallelConfig parallelConfig,
    std::size_t numPartitionVariables) {
  CollectScenario scenario(config);
  const PartitionPlan plan =
      planPartitions(scenario.partitionVariables(numPartitionVariables));
  if (parallelConfig.horizon == 0)
    parallelConfig.horizon = config.simulationTime;
  if (!parallelConfig.checkpointDir.empty() &&
      parallelConfig.scenarioSpec.empty())
    parallelConfig.scenarioSpec =
        encodeCollectScenarioSpec(config, numPartitionVariables);

  // One recorder per job, attached inside the factory: the vector is
  // pre-sized, so concurrent workers touch disjoint elements.
  std::vector<MetricsRecorder> recorders(plan.jobs.size());
  const EngineFactory base = scenario.engineFactory();
  const EngineFactory withMetrics =
      [&base, &recorders](const PartitionJob& job) {
        std::unique_ptr<Engine> engine = base(job);
        engine->setSampler(recorders[job.id].sampler());
        return engine;
      };

  PartitionedCollectResult result;
  result.result = runPartitioned(withMetrics, plan, parallelConfig);
  std::vector<std::vector<MetricSample>> series;
  series.reserve(recorders.size());
  for (const MetricsRecorder& recorder : recorders)
    series.push_back(recorder.samples());
  result.samples = stitchSamples(series);
  return result;
}

FleetResult runCollectFleet(const CollectScenarioConfig& config,
                            FleetConfig fleetConfig,
                            std::size_t numPartitionVariables) {
  CollectScenario scenario(config);
  const PartitionPlan plan =
      planPartitions(scenario.partitionVariables(numPartitionVariables));
  if (fleetConfig.horizon == 0) fleetConfig.horizon = config.simulationTime;
  if (fleetConfig.scenarioSpec.empty())
    fleetConfig.scenarioSpec =
        encodeCollectScenarioSpec(config, numPartitionVariables);
  return runFleet(scenario.engineFactory(), plan, fleetConfig);
}

}  // namespace sde::trace
