#include "trace/scenario.hpp"

#include <cmath>

namespace sde::trace {

ScenarioResult summarize(Engine& engine, RunOutcome outcome) {
  ScenarioResult result;
  result.outcome = outcome;
  result.wallSeconds = engine.wallSeconds();
  result.states = engine.numStates();
  result.memoryBytes = engine.simulatedMemoryBytes();
  result.groups = engine.mapper().numGroups();
  result.events = engine.eventsProcessed();
  result.packets = engine.stats().get("engine.packets");
  result.duplicatesStrict =
      findDuplicates(engine.states(), DuplicateMode::kStrict);
  result.duplicatesContent =
      findDuplicates(engine.states(), DuplicateMode::kContent);
  return result;
}

CollectScenario::CollectScenario(CollectScenarioConfig config)
    : config_(std::move(config)), program_(rime::buildCollectApp(config_.app)) {
  net::Topology topology =
      net::Topology::grid(config_.gridWidth, config_.gridHeight);
  // Figure 9: sink in the top-left corner (node 0), source in the
  // bottom-right corner.
  const net::NodeId sink = 0;
  source_ = topology.numNodes() - 1;
  const net::RoutingTable routing = net::RoutingTable::towards(topology, sink);
  route_ = routing.path(source_);
  // §IV-A: "nodes on the data path towards the destination and their
  // neighbors should symbolically drop one packet".
  failureNodes_ = routing.pathAndNeighbors(topology, source_);
  bootGlobals_ =
      rime::collectBootGlobals(topology, routing, source_, config_.sendInterval);

  plan_ = std::make_unique<os::NetworkPlan>(topology);
  plan_->runEverywhere(program_);
  engine_ = makeEngine();
  engine_->setSampler(metrics_.sampler());
}

std::unique_ptr<Engine> CollectScenario::makeEngine() const {
  auto engine = std::make_unique<Engine>(*plan_, config_.mapper, config_.engine);
  for (const rime::BootAssignment& boot : bootGlobals_)
    engine->setBootGlobal(boot.node, boot.slot, boot.value);
  auto failures = std::make_unique<net::CompositeFailureModel>();
  if (config_.symbolicDrops)
    failures->add(std::make_unique<net::SymbolicDropModel>(
        failureNodes_, config_.maxDropsPerNode));
  if (config_.symbolicDuplicates)
    failures->add(std::make_unique<net::SymbolicDuplicateModel>(
        failureNodes_, config_.maxDropsPerNode));
  if (config_.symbolicReboots)
    failures->add(std::make_unique<net::SymbolicRebootModel>(
        failureNodes_, config_.maxDropsPerNode));
  engine->setFailureModel(std::move(failures));
  return engine;
}

std::vector<std::string> CollectScenario::partitionVariables(
    std::size_t maxVariables) const {
  std::vector<std::string> variables;
  if (!config_.symbolicDrops) return variables;
  // route_[0] is the source, which transmits but never receives data
  // packets — its drop decision would rarely be reached.
  for (std::size_t hop = 1;
       hop < route_.size() && variables.size() < maxVariables; ++hop) {
    variables.push_back("n" + std::to_string(route_[hop]) + "." +
                        net::SymbolicDropModel::kLabel + ".0");
  }
  return variables;
}

EngineFactory CollectScenario::engineFactory() const {
  return [this](const PartitionJob&) { return makeEngine(); };
}

ScenarioResult CollectScenario::run() {
  const RunOutcome outcome = engine_->run(config_.simulationTime);
  return summarize(*engine_, outcome);
}

FloodScenario::FloodScenario(FloodScenarioConfig config)
    : config_(std::move(config)), program_(rime::buildFloodApp()) {
  net::Topology topology =
      config_.fullMesh
          ? net::Topology::fullMesh(config_.nodes)
          : net::Topology::grid(
                static_cast<std::uint32_t>(std::lround(
                    std::sqrt(static_cast<double>(config_.nodes)))),
                static_cast<std::uint32_t>(std::lround(
                    std::sqrt(static_cast<double>(config_.nodes)))));
  const net::NodeId source = topology.numNodes() - 1;

  plan_ = std::make_unique<os::NetworkPlan>(topology);
  plan_->runEverywhere(program_);
  engine_ = std::make_unique<Engine>(*plan_, config_.mapper, config_.engine);

  for (const rime::BootAssignment& boot :
       rime::floodBootGlobals(topology, source, config_.sendInterval))
    engine_->setBootGlobal(boot.node, boot.slot, boot.value);

  if (config_.symbolicDrops) {
    std::vector<net::NodeId> everyone(topology.numNodes());
    for (net::NodeId n = 0; n < topology.numNodes(); ++n) everyone[n] = n;
    engine_->setFailureModel(std::make_unique<net::SymbolicDropModel>(
        everyone, config_.maxDropsPerNode));
  }
  engine_->setSampler(metrics_.sampler());
}

ScenarioResult FloodScenario::run() {
  const RunOutcome outcome = engine_->run(config_.simulationTime);
  return summarize(*engine_, outcome);
}

PartitionedCollectResult runCollectPartitioned(
    const CollectScenarioConfig& config, ParallelConfig parallelConfig,
    std::size_t numPartitionVariables) {
  CollectScenario scenario(config);
  const PartitionPlan plan =
      planPartitions(scenario.partitionVariables(numPartitionVariables));
  if (parallelConfig.horizon == 0)
    parallelConfig.horizon = config.simulationTime;

  // One recorder per job, attached inside the factory: the vector is
  // pre-sized, so concurrent workers touch disjoint elements.
  std::vector<MetricsRecorder> recorders(plan.jobs.size());
  const EngineFactory base = scenario.engineFactory();
  const EngineFactory withMetrics =
      [&base, &recorders](const PartitionJob& job) {
        std::unique_ptr<Engine> engine = base(job);
        engine->setSampler(recorders[job.id].sampler());
        return engine;
      };

  PartitionedCollectResult result;
  result.result = runPartitioned(withMetrics, plan, parallelConfig);
  std::vector<std::vector<MetricSample>> series;
  series.reserve(recorders.size());
  for (const MetricsRecorder& recorder : recorders)
    series.push_back(recorder.samples());
  result.samples = stitchSamples(series);
  return result;
}

}  // namespace sde::trace
