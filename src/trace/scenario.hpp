// Ready-made evaluation scenarios — the harness layer benches, examples
// and integration tests share. CollectScenario is the paper's §IV setup:
// a w×h grid, a source in the bottom-right corner streaming data every
// second along a static route to the sink in the top-left corner, and
// symbolic packet drops on the data path and its radio neighbourhood.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "rime/apps.hpp"
#include "sde/duplicates.hpp"
#include "sde/fleet.hpp"
#include "sde/parallel.hpp"
#include "trace/metrics.hpp"

namespace sde::trace {

struct ScenarioResult {
  RunOutcome outcome = RunOutcome::kCompleted;
  double wallSeconds = 0;
  std::uint64_t states = 0;
  std::uint64_t memoryBytes = 0;      // all-component footprint at run end
  std::uint64_t peakMemoryBytes = 0;  // engine.peak_memory_bytes high-water
  std::uint64_t groups = 0;
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  std::uint64_t merges = 0;         // states absorbed at join points
  std::uint64_t loopSummaries = 0;  // timer iterations replayed summarily
  // Paper-model duplicates (packets distinguished by identity; §III-D:
  // zero for SDS) and content-model duplicates (the §III-D optimisation
  // headroom).
  DuplicateReport duplicatesStrict;
  DuplicateReport duplicatesContent;
};

// --- The paper's grid data-collection scenario (§IV-A) -----------------------
struct CollectScenarioConfig {
  std::uint32_t gridWidth = 5;
  std::uint32_t gridHeight = 5;
  // "send a data packet every second", "simulation time is 10 seconds":
  // we use 1000 virtual-time units per second.
  std::uint64_t sendInterval = 1000;
  std::uint64_t simulationTime = 10000;
  MapperKind mapper = MapperKind::kSds;
  bool symbolicDrops = true;        // the paper's failure configuration
  std::uint32_t maxDropsPerNode = 1;
  bool symbolicDuplicates = false;  // further failures (§IV-A)
  bool symbolicReboots = false;
  rime::CollectOptions app;
  EngineConfig engine;
};

class CollectScenario {
 public:
  explicit CollectScenario(CollectScenarioConfig config);

  // Runs to config.simulationTime (idempotent on repeat calls).
  ScenarioResult run();

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] const MetricsRecorder& metrics() const { return metrics_; }
  [[nodiscard]] net::NodeId source() const { return source_; }
  [[nodiscard]] net::NodeId sink() const { return 0; }

  // Partition-variable candidates for this scenario: the first drop
  // decision ("n<node>.netdrop.0") of each data-path node, hop order
  // from the source — decisions that fire early on almost every path,
  // which keeps the re-explored (undecided) overlap between partition
  // jobs small. At most `maxVariables`; empty without symbolic drops.
  [[nodiscard]] std::vector<std::string> partitionVariables(
      std::size_t maxVariables) const;

  // Thread-safe factory building an identically configured engine per
  // partition job (same plan, boot globals, failure models; no sampler
  // — the partitioned runners attach their own). `this` must outlive
  // every factory call.
  [[nodiscard]] EngineFactory engineFactory() const;

 private:
  [[nodiscard]] std::unique_ptr<Engine> makeEngine() const;

  CollectScenarioConfig config_;
  vm::Program program_;
  std::unique_ptr<os::NetworkPlan> plan_;
  std::unique_ptr<Engine> engine_;
  MetricsRecorder metrics_;
  net::NodeId source_ = 0;
  std::vector<net::NodeId> route_;  // source -> sink, inclusive
  std::vector<net::NodeId> failureNodes_;
  std::vector<rime::BootAssignment> bootGlobals_;
};

// --- Flooding (the adversarial case, §IV-C) ----------------------------------
struct FloodScenarioConfig {
  std::uint32_t nodes = 4;
  bool fullMesh = true;  // false: grid of nodes (must be a square count)
  std::uint64_t sendInterval = 1000;
  std::uint64_t simulationTime = 3000;
  MapperKind mapper = MapperKind::kSds;
  bool symbolicDrops = true;
  std::uint32_t maxDropsPerNode = 1;
  EngineConfig engine;
};

class FloodScenario {
 public:
  explicit FloodScenario(FloodScenarioConfig config);
  ScenarioResult run();

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] const MetricsRecorder& metrics() const { return metrics_; }

 private:
  FloodScenarioConfig config_;
  vm::Program program_;
  std::unique_ptr<os::NetworkPlan> plan_;
  std::unique_ptr<Engine> engine_;
  MetricsRecorder metrics_;
};

// Shared summary extraction.
[[nodiscard]] ScenarioResult summarize(Engine& engine, RunOutcome outcome);

// --- Single-engine durable runs ----------------------------------------------
// Attaches periodic checkpointing of `engine` to `file` (atomic
// temp-file + rename writes, cadence in processed events, plus the
// final checkpoint a resource-cap abort triggers) and, when `resume` is
// set and the file exists, restores the engine from it first — the
// engine must still be fresh (not yet run). Returns true if a
// checkpoint was restored; throws snapshot::SnapshotError on a corrupt
// or incompatible file. Backs the benches' --checkpoint-dir/--resume
// flags.
bool attachCheckpointing(Engine& engine, const std::filesystem::path& file,
                         bool resume, std::uint64_t everyEvents = 4096);

// --- Partitioned execution of the collect scenario ---------------------------
struct PartitionedCollectResult {
  ParallelResult result;
  // Per-job metric series stitched into one virtual-time-ordered
  // timeline (see stitchSamples).
  std::vector<MetricSample> samples;
};

// Runs the collect scenario partitioned over `numPartitionVariables`
// drop decisions (2^n jobs) on parallelConfig.workers threads. A zero
// parallelConfig.horizon defaults to config.simulationTime. When
// parallelConfig.checkpointDir is set and no scenarioSpec was provided,
// the encoded spec of (config, numPartitionVariables) is recorded in
// the run manifest, making the directory self-describing.
[[nodiscard]] PartitionedCollectResult runCollectPartitioned(
    const CollectScenarioConfig& config, ParallelConfig parallelConfig,
    std::size_t numPartitionVariables);

// Runs the collect scenario as a multi-process fleet (sde/fleet.hpp)
// over `numPartitionVariables` drop decisions. A zero
// fleetConfig.horizon defaults to config.simulationTime, and the
// encoded scenario spec is recorded in the run manifest so sde_fleet
// can resume the directory on its own. Unlike runCollectPartitioned,
// no metric series is collected — the fleet workers own the engine
// sampler for the steal/status protocol.
[[nodiscard]] FleetResult runCollectFleet(const CollectScenarioConfig& config,
                                          FleetConfig fleetConfig,
                                          std::size_t numPartitionVariables);

// --- Durable-run scenario codec ----------------------------------------------
// Renders a CollectScenarioConfig (plus the partition-variable count)
// as the opaque scenario spec recorded in a run manifest, and parses it
// back, so `sde_checkpoint resume` can rebuild the identical fleet from
// the checkpoint directory alone. The codec covers every field that
// influences the explored state space; encode/decode round-trips
// exactly.
[[nodiscard]] std::string encodeCollectScenarioSpec(
    const CollectScenarioConfig& config, std::size_t numPartitionVariables);

struct DecodedCollectSpec {
  CollectScenarioConfig config;
  std::size_t numPartitionVariables = 0;
};
// nullopt if `spec` is not an encoded collect scenario (foreign or
// hand-edited manifest).
[[nodiscard]] std::optional<DecodedCollectSpec> decodeCollectScenarioSpec(
    const std::string& spec);

}  // namespace sde::trace
