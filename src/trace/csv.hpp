// Schema-driven CSV emission.
//
// A CSV file is defined by one column table: header rendering and row
// rendering both walk it, so they cannot drift apart (a hand-maintained
// header once went stale when columns were added). Every emitter in the
// repo — the Figure 10 metric series, the VM microbench outputs — goes
// through this writer; a new file format is a new schema table, not new
// serialization code.
#pragma once

#include <ostream>
#include <span>
#include <string_view>

#include "support/assert.hpp"

namespace sde::trace {

// One emitted column: name (header cell) and row renderer.
template <class Row>
struct CsvColumn {
  const char* name;
  void (*write)(std::ostream& os, const Row& row);
};

// A field that lands verbatim in the output (series names, labels): a
// comma or newline inside it would silently shift every column of every
// subsequent row, so reject it at the source.
inline void validateCsvField(std::string_view text) {
  SDE_ASSERT(text.find(',') == std::string_view::npos &&
                 text.find('\n') == std::string_view::npos &&
                 text.find('\r') == std::string_view::npos,
             "CSV field must not contain commas or newlines");
}

// Streams one CSV file: the header is written on construction, rows on
// each row() call. An optional lead column (e.g. "series") carries a
// per-row label that is not part of the row struct.
template <class Row>
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::span<const CsvColumn<Row>> schema,
            std::string_view leadColumn = {})
      : os_(os), schema_(schema), hasLead_(!leadColumn.empty()) {
    bool first = true;
    if (hasLead_) {
      validateCsvField(leadColumn);
      os_ << leadColumn;
      first = false;
    }
    for (const CsvColumn<Row>& column : schema_) {
      if (!first) os_ << ',';
      os_ << column.name;
      first = false;
    }
    os_ << '\n';
  }

  void row(const Row& value, std::string_view leadValue = {}) {
    bool first = true;
    if (hasLead_) {
      validateCsvField(leadValue);
      os_ << leadValue;
      first = false;
    }
    for (const CsvColumn<Row>& column : schema_) {
      if (!first) os_ << ',';
      column.write(os_, value);
      first = false;
    }
    os_ << '\n';
  }

 private:
  std::ostream& os_;
  std::span<const CsvColumn<Row>> schema_;
  bool hasLead_;
};

}  // namespace sde::trace
