#include "trace/metrics.hpp"

namespace sde::trace {

Engine::Sampler MetricsRecorder::sampler() {
  return [this](const Engine& engine) {
    samples_.push_back(MetricSample{
        engine.wallSeconds(), engine.virtualNow(), engine.numStates(),
        engine.simulatedMemoryBytes(), engine.mapper().numGroups(),
        engine.eventsProcessed()});
  };
}

const MetricSample& MetricsRecorder::last() const {
  SDE_ASSERT(!samples_.empty(), "no samples recorded");
  return samples_.back();
}

void MetricsRecorder::writeCsv(std::ostream& os,
                               std::string_view seriesName) const {
  os << "series,wall_s,virtual_t,states,memory_bytes,groups,events\n";
  for (const MetricSample& s : samples_) {
    os << seriesName << ',' << s.wallSeconds << ',' << s.virtualTime << ','
       << s.states << ',' << s.memoryBytes << ',' << s.groups << ','
       << s.events << '\n';
  }
}

}  // namespace sde::trace
