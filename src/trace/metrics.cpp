#include "trace/metrics.hpp"

#include <algorithm>

namespace sde::trace {

Engine::Sampler MetricsRecorder::sampler() {
  return [this](const Engine& engine) {
    samples_.push_back(MetricSample{
        engine.wallSeconds(), engine.virtualNow(), engine.numStates(),
        engine.simulatedMemoryBytes(), engine.mapper().numGroups(),
        engine.eventsProcessed(), engine.stats().get("engine.merges"),
        engine.stats().get("engine.loop_summaries")});
  };
}

std::span<const MetricColumn> metricCsvSchema() {
  static constexpr MetricColumn kSchema[] = {
      {"wall_s",
       [](std::ostream& os, const MetricSample& s) { os << s.wallSeconds; }},
      {"virtual_t",
       [](std::ostream& os, const MetricSample& s) { os << s.virtualTime; }},
      {"states",
       [](std::ostream& os, const MetricSample& s) { os << s.states; }},
      {"memory_bytes",
       [](std::ostream& os, const MetricSample& s) { os << s.memoryBytes; }},
      {"groups",
       [](std::ostream& os, const MetricSample& s) { os << s.groups; }},
      {"events",
       [](std::ostream& os, const MetricSample& s) { os << s.events; }},
      {"merges",
       [](std::ostream& os, const MetricSample& s) { os << s.merges; }},
      {"loop_summaries",
       [](std::ostream& os, const MetricSample& s) { os << s.loopSummaries; }},
  };
  return kSchema;
}

const MetricSample& MetricsRecorder::last() const {
  SDE_ASSERT(!samples_.empty(), "no samples recorded");
  return samples_.back();
}

void MetricsRecorder::writeCsv(std::ostream& os,
                               std::string_view seriesName) const {
  // Validate up front, not just per row: a bad name must die even for a
  // recorder that never sampled.
  validateCsvField(seriesName);
  CsvWriter<MetricSample> csv(os, metricCsvSchema(), "series");
  for (const MetricSample& s : samples_) csv.row(s, seriesName);
}

std::vector<MetricSample> stitchSamples(
    std::span<const std::vector<MetricSample>> series) {
  struct Keyed {
    MetricSample sample;
    std::size_t seriesIndex = 0;
  };
  std::vector<Keyed> keyed;
  for (std::size_t i = 0; i < series.size(); ++i)
    for (const MetricSample& sample : series[i]) keyed.push_back({sample, i});
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.sample.virtualTime != b.sample.virtualTime)
                       return a.sample.virtualTime < b.sample.virtualTime;
                     if (a.sample.events != b.sample.events)
                       return a.sample.events < b.sample.events;
                     return a.seriesIndex < b.seriesIndex;
                   });
  std::vector<MetricSample> merged;
  merged.reserve(keyed.size());
  for (const Keyed& k : keyed) merged.push_back(k.sample);
  return merged;
}

}  // namespace sde::trace
