#include "trace/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace sde::trace {

void TextTable::addRow(std::vector<std::string> cells) {
  SDE_ASSERT(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emitRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  const auto emitRule = [&] {
    os << "+";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emitRule();
  emitRow(headers_);
  emitRule();
  for (const auto& row : rows_) emitRow(row);
  emitRule();
  return os.str();
}

std::string formatDuration(double seconds) {
  SDE_ASSERT(seconds >= 0, "negative duration");
  const auto total = static_cast<std::uint64_t>(std::llround(seconds));
  char buf[64];
  if (total >= 3600) {
    std::snprintf(buf, sizeof buf, "%lluh:%02llum",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>((total % 3600) / 60));
  } else if (total >= 60) {
    std::snprintf(buf, sizeof buf, "%llum:%02llus",
                  static_cast<unsigned long long>(total / 60),
                  static_cast<unsigned long long>(total % 60));
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%llus",
                  static_cast<unsigned long long>(total));
  } else {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1000.0);
  }
  return buf;
}

std::string formatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) result.push_back(',');
    result.push_back(digits[i]);
  }
  return result;
}

std::string formatBytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0)
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  else
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
  return buf;
}

}  // namespace sde::trace
