// Plain-text table rendering and unit formatting for bench output —
// producing rows shaped like the paper's Table I ("1h:38m", "3.4 GB").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sde::trace {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// 7.5  -> "7s"; 98.2 -> "1m:38s"; 5875 -> "1h:38m" (paper style).
[[nodiscard]] std::string formatDuration(double seconds);
// 1,025,700-style thousands separators.
[[nodiscard]] std::string formatCount(std::uint64_t value);
// "38.1 GB" / "3.4 MB" / "512 B".
[[nodiscard]] std::string formatBytes(std::uint64_t bytes);

}  // namespace sde::trace
