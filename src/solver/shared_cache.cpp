#include "solver/shared_cache.hpp"

#include <algorithm>

namespace sde::solver {

SharedQueryKey makeSharedQueryKey(const QueryKey& key) {
  SharedQueryKey hashes;
  hashes.reserve(key.size());
  for (expr::Ref c : key) hashes.push_back(c->hash());
  return hashes;
}

SharedQueryResult toSharedResult(const EnumResult& result) {
  SharedQueryResult shared;
  shared.status = result.status;
  if (result.status == EnumStatus::kSat) {
    shared.model.reserve(result.model.size());
    for (const auto& [var, value] : result.model.entries())
      shared.model.push_back(
          SharedBinding{std::string(var->name()), var->width(), value});
    // The Assignment map is unordered; name order makes the shared
    // rendering canonical (names are unique within a run).
    std::sort(shared.model.begin(), shared.model.end(),
              [](const SharedBinding& a, const SharedBinding& b) {
                return a.name < b.name;
              });
  }
  return shared;
}

EnumResult fromSharedResult(expr::Context& ctx,
                            const SharedQueryResult& result) {
  EnumResult local;
  local.status = result.status;
  for (const SharedBinding& binding : result.model)
    local.model.set(ctx.variable(binding.name, binding.width), binding.value);
  return local;
}

std::size_t SharedQueryCache::KeyHash::operator()(
    const SharedQueryKey& key) const {
  support::Hasher h;
  for (const std::uint64_t v : key) h.u64(v);
  return static_cast<std::size_t>(h.digest());
}

SharedQueryCache::SharedQueryCache(std::size_t shards) {
  // Round up to a power of two so shard selection is a mask.
  std::size_t n = 1;
  while (n < shards) n <<= 1;
  shards_ = std::vector<Shard>(n);
  shardMask_ = n - 1;
}

SharedQueryCache::Shard& SharedQueryCache::shardFor(
    const SharedQueryKey& key) const {
  return shards_[KeyHash{}(key)&shardMask_];
}

std::optional<SharedQueryResult> SharedQueryCache::lookup(
    const SharedQueryKey& key) const {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SharedQueryCache::insert(const SharedQueryKey& key,
                              SharedQueryResult result) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.emplace(key, std::move(result)).second)
    inserts_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SharedQueryCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void SharedQueryCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<SharedQueryKey, SharedQueryResult>>
SharedQueryCache::sortedEntries() const {
  std::vector<std::pair<SharedQueryKey, SharedQueryResult>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    entries.insert(entries.end(), shard.map.begin(), shard.map.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace sde::solver
