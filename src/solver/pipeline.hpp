// The layered query pipeline behind the Solver facade.
//
// What used to be one if-chain in Solver::solveConjunction is a sequence
// of self-describing SolverLayer stages, each of which either answers
// the query or passes it down:
//
//   constant-fold   — refute on any constant-false conjunct
//   canonicalize    — build the canonical key (commutative operands are
//                     already sorted at intern time in expr::Context;
//                     this stage sorts/dedups the conjunction and drops
//                     trivially-true conjuncts); an empty key is SAT
//   exact-cache     — per-worker exact-key result cache
//   subsumption     — recent-model reuse, then UNSAT-subset refutation
//                     (a cached UNSAT key that is a subset of the query
//                     proves UNSAT), then model-pool counterexample
//                     reuse (a cached model satisfying the query proves
//                     SAT, KLEE-style)
//   shared-cache    — the cross-worker SharedQueryCache, consulted live
//   interval        — interval-arithmetic refutation
//   enumerate       — complete (bounded) model enumeration; always
//                     answers
//
// Every layer reports hit/miss/latency counters through the stats
// registry ("solver.layer.<name>.{queries,hits,nanos}") and tags the
// answers it produces with its obs::SolverLayerDetail, which the trace
// sink records per query.
//
// Determinism contract (load-bearing — the differential tests in
// tests/sde/parallel_equivalence_test.cpp enforce it): every layer's
// answer must be a pure function of the query and of local state that
// itself evolved purely. The shared-cache layer stays transparent by
// only ever holding canonical results (interval refutations and
// enumerated models — enumeration orders variables context-
// independently, so every worker would compute the identical result)
// and by folding hits into the local cache exactly as if computed
// locally. History-dependent answers (model reuse, subsumption) are
// never published to the shared cache.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "expr/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "solver/cache.hpp"
#include "solver/enum_solver.hpp"
#include "solver/interval_solver.hpp"
#include "support/stats.hpp"

namespace sde::solver {

class SharedQueryStore;

struct SolverConfig {
  bool useIndependence = true;
  bool useIntervals = true;
  bool useCache = true;
  // Layered-pipeline dispatch. Off falls back to the pre-pipeline
  // monolithic path (kept verbatim for differential testing); the two
  // must produce identical exploration results.
  bool usePipeline = true;
  // The subsumption stage (UNSAT-subset + model pool). The recent-model
  // reuse window predates the pipeline and is governed by useCache.
  bool useSubsumption = true;
  // Gate for consulting/publishing an attached SharedQueryCache.
  bool useSharedCache = true;
  EnumConfig enumeration;
};

// One query's worth of state, threaded through the layers in order.
struct LayerQuery {
  expr::Context& ctx;
  support::StatsRegistry& stats;
  const SolverConfig& config;
  std::span<const expr::Ref> conjunction;  // as posed by the caller
  QueryKey key;                            // filled by canonicalize
  expr::IntervalEnv intervals;             // filled by the interval layer
  QueryCache& cache;
  SharedQueryStore* shared = nullptr;
  // Whether the caller consumes the model (getValue/getModel) or only
  // the status (mayBeTrue and friends). Model-pool reuse answers only
  // status-only queries: its models are genuine but need not match the
  // canonical enumeration-order model the caller would otherwise see.
  bool needModel = false;
};

// A layer's verdict: the result plus which layer kind produced it (the
// subsumption layer alone distinguishes model-reuse from subset hits).
struct LayerAnswer {
  EnumResult result;
  obs::SolverLayerDetail detail{};
};

struct LayerCounters {
  std::uint64_t queries = 0;  // times the layer was consulted
  std::uint64_t hits = 0;     // times it answered
  std::uint64_t nanos = 0;    // wall time spent inside the layer
};

class SolverLayer {
 public:
  explicit SolverLayer(std::string_view name);
  virtual ~SolverLayer() = default;

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] const LayerCounters& counters() const { return counters_; }

  // Answers the query or returns nullopt to pass it to the next layer.
  [[nodiscard]] virtual std::optional<LayerAnswer> query(LayerQuery& q) = 0;

 private:
  friend class SolverPipeline;
  std::string name_;
  LayerCounters counters_;
  // Precomputed registry keys ("solver.layer.<name>.hits", ...) so the
  // per-query hot path never builds strings.
  std::string queriesKey_;
  std::string hitsKey_;
  std::string nanosKey_;
  // Live-metrics histogram id ("solver.layer.<name>.latency_ns"),
  // registered once by setMetrics so the per-query path is one atomic
  // bump per layer.
  obs::MetricsRegistry::Id latencyId_ = 0;
};

class SolverPipeline {
 public:
  SolverPipeline(expr::Context& ctx, const SolverConfig& config,
                 QueryCache& cache, support::StatsRegistry& stats);

  // Runs the query through the layers. The final enumeration layer
  // always answers, so this never fails to produce a result.
  [[nodiscard]] LayerAnswer solve(std::span<const expr::Ref> conjunction,
                                  bool needModel);

  void setSharedCache(SharedQueryStore* shared) { shared_ = shared; }
  [[nodiscard]] SharedQueryStore* sharedCache() const { return shared_; }

  // Live metrics plane, pointer-guarded like the trace sink: null (the
  // default) costs one compare per layer. Registers one latency
  // histogram per layer on attach.
  void setMetrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

  [[nodiscard]] const std::vector<std::unique_ptr<SolverLayer>>& layers()
      const {
    return layers_;
  }

 private:
  expr::Context& ctx_;
  const SolverConfig& config_;
  QueryCache& cache_;
  support::StatsRegistry& stats_;
  SharedQueryStore* shared_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<SolverLayer>> layers_;
};

}  // namespace sde::solver
