// Process-external shared query cache: the SharedQueryCache promoted to
// a fixed-size POSIX shared-memory segment so the *fleet* execution mode
// (sde/fleet.hpp — worker processes, not threads) keeps the live
// cross-worker hit rate of parallel runs.
//
// Layout: one versioned header followed by a fixed table of
// open-addressed slots. The in-process cache's mutex striping becomes
// per-slot atomic publication here — a process-shared mutex can be
// leaked forever by a SIGKILLed holder, while a slot-claim CAS cannot
// wedge anybody:
//
//   * insert claims a slot (state empty -> claimed, one CAS), writes the
//     payload, then publishes (state -> published, release store). A
//     worker killed mid-write leaves the slot claimed forever; readers
//     and writers simply probe past it. One slot is wasted, nothing
//     blocks, nothing is torn.
//   * entries are immutable once published (first writer wins, no
//     updates, no deletes), so a lookup that sees `published` (acquire
//     load) reads a complete, final payload.
//
// Everything else follows the SharedQueryStore contract (see
// shared_cache.hpp): context-independent keys, canonical values only,
// so exploration stays byte-identical with the segment attached or not.
// The store is best-effort by design — a full table or an oversize
// entry drops the insert, never the correctness.
//
// Robustness: attach() validates magic, layout version, the two-phase
// init marker and the geometry against the actual segment size before
// touching the table; any mismatch (torn, truncated, foreign, stale
// layout) throws ShmCacheError and the fleet runner degrades to a cold
// cache rather than reading garbage.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "solver/shared_cache.hpp"

namespace sde::solver {

class ShmCacheError : public std::runtime_error {
 public:
  explicit ShmCacheError(const std::string& what) : std::runtime_error(what) {}
};

struct ShmCacheConfig {
  // Total segment size; the slot count is derived from it. The default
  // comfortably holds every query of the evaluation scenarios.
  std::size_t bytes = 32u << 20;
  // Per-entry capacity. Oversize entries are simply not published
  // (best-effort store); the bounds cover every query the engine
  // generates with generous slack.
  std::uint32_t maxConjuncts = 48;
  std::uint32_t maxBindings = 32;
  std::uint32_t nameBytes = 40;  // per binding, including the NUL
};

class ShmQueryCache final : public SharedQueryStore {
 public:
  // Creates a fresh segment `name` (a POSIX shm name, "/sde_qc_...").
  // Fails with ShmCacheError if the name exists or the segment cannot
  // be sized. The creating process should unlinkSegment() when done.
  [[nodiscard]] static std::unique_ptr<ShmQueryCache> create(
      const std::string& name, const ShmCacheConfig& config = {});

  // Attaches to an existing segment. Throws ShmCacheError on a missing,
  // truncated, torn, version-mismatched or foreign segment — callers
  // degrade to a cold cache.
  [[nodiscard]] static std::unique_ptr<ShmQueryCache> attach(
      const std::string& name);

  // Removes the name from the shm namespace (existing mappings live on).
  // Idempotent; missing names are ignored.
  static void unlinkSegment(const std::string& name);

  // Whether a segment of this name exists at all (says nothing about
  // its validity — attach() judges that).
  [[nodiscard]] static bool segmentExists(const std::string& name);

  ~ShmQueryCache() override;
  ShmQueryCache(const ShmQueryCache&) = delete;
  ShmQueryCache& operator=(const ShmQueryCache&) = delete;

  // SharedQueryStore. Safe to call concurrently from any process
  // attached to the segment (and from any thread).
  [[nodiscard]] std::optional<SharedQueryResult> lookup(
      const SharedQueryKey& key) const override;
  void insert(const SharedQueryKey& key, SharedQueryResult result) override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t capacitySlots() const;
  // Published entries, fleet-wide (header counter).
  [[nodiscard]] std::uint64_t entries() const;
  // Fleet-wide counters, aggregated in the segment header across every
  // attached process (relaxed; reporting only).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t inserts() const;
  // Inserts dropped because the table was full (probe limit) or the
  // entry exceeded the per-entry bounds.
  [[nodiscard]] std::uint64_t dropped() const;

  // Deterministic enumeration of every published entry, sorted by key —
  // feeds the durable shared_cache.bin sidecar so a resumed fleet
  // starts warm even though the segment itself died with the machine.
  [[nodiscard]] std::vector<std::pair<SharedQueryKey, SharedQueryResult>>
  sortedEntries() const;

 private:
  struct Header;
  struct Slot;

  ShmQueryCache(std::string name, int fd, void* base, std::size_t bytes);

  [[nodiscard]] Header& header() const;
  [[nodiscard]] Slot* slotAt(std::uint64_t index) const;
  [[nodiscard]] std::uint64_t slotBytes() const;
  [[nodiscard]] static std::uint64_t slotBytesFor(std::uint32_t maxConjuncts,
                                                 std::uint32_t maxBindings,
                                                 std::uint32_t nameBytes);

  std::string name_;
  int fd_ = -1;
  void* base_ = nullptr;
  std::size_t mappedBytes_ = 0;
};

}  // namespace sde::solver
