// A path-constraint set: the conjunction of boolean terms collected at
// symbolic branches along one execution path. Terms are deduplicated
// (interning makes structural equality pointer equality) and kept in
// insertion order so that test-case generation is reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "expr/context.hpp"
#include "expr/expr.hpp"

namespace sde::solver {

class ConstraintSet {
 public:
  ConstraintSet() = default;

  enum class AddResult {
    kAdded,            // new non-trivial constraint recorded
    kRedundant,        // constant true or already present
    kTriviallyFalse};  // constant false: the path is infeasible

  AddResult add(expr::Ref c);

  [[nodiscard]] bool contains(expr::Ref c) const;
  [[nodiscard]] std::span<const expr::Ref> items() const {
    return constraints_;
  }
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }
  [[nodiscard]] bool empty() const { return constraints_.empty(); }

  // Order-independent fingerprint of the conjunction; equal sets (as
  // sets) hash equal regardless of insertion order.
  [[nodiscard]] std::uint64_t setHash() const { return setHash_; }

  // The distinct variables constrained by this set, ordered by variable
  // interning id (deterministic).
  [[nodiscard]] std::vector<expr::Ref> variables(
      const expr::Context& ctx) const;

 private:
  std::vector<expr::Ref> constraints_;
  std::uint64_t setHash_ = 0;
};

}  // namespace sde::solver
