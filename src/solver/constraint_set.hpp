// A path-constraint set: the conjunction of boolean terms collected at
// symbolic branches along one execution path. Terms are deduplicated
// (interning makes structural equality pointer equality) and kept in
// insertion order so that test-case generation is reproducible.
//
// Storage is a persistent chunked sequence (support::PVector): a forked
// state shares every sealed chunk of its parent's constraint history and
// copies only the small mutable tail, so copying a ConstraintSet is O(1)
// in the number of constraints — the solver sees the same insertion
// order either way.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "expr/context.hpp"
#include "expr/expr.hpp"
#include "support/pvector.hpp"

namespace sde::solver {

class ConstraintSet {
 public:
  using Items = support::PVector<expr::Ref>;

  ConstraintSet() = default;

  enum class AddResult {
    kAdded,            // new non-trivial constraint recorded
    kRedundant,        // constant true or already present
    kTriviallyFalse};  // constant false: the path is infeasible

  AddResult add(expr::Ref c);

  [[nodiscard]] bool contains(const expr::Ref& c) const;
  [[nodiscard]] const Items& items() const { return constraints_; }
  // Flat copy for callers that need contiguous storage (the solver
  // facade slices with std::span).
  [[nodiscard]] std::vector<expr::Ref> toVector() const;
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }
  [[nodiscard]] bool empty() const { return constraints_.empty(); }

  // Order-independent fingerprint of the conjunction; equal sets (as
  // sets) hash equal regardless of insertion order. Maintained
  // incrementally — never recomputed by walking the history.
  [[nodiscard]] std::uint64_t setHash() const { return setHash_; }

  // The distinct variables constrained by this set, ordered by variable
  // interning id (deterministic).
  [[nodiscard]] std::vector<expr::Ref> variables(
      const expr::Context& ctx) const;

  // --- Fork cost / memory accounting -----------------------------------------
  [[nodiscard]] std::uint64_t copyCostElements() const {
    return constraints_.copyCostElements();
  }
  [[nodiscard]] std::uint64_t sharedChunksOnCopy() const {
    return constraints_.sharedChunksOnCopy();
  }
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen) const {
    return constraints_.accountBytes(seen);
  }

  // --- Snapshot support --------------------------------------------------------
  // Swaps in a deserialized sequence (chunks shared through the snapshot
  // blob table) and recomputes the incremental fingerprint.
  void restoreSnapshot(Items items);

 private:
  Items constraints_;
  std::uint64_t setHash_ = 0;
};

}  // namespace sde::solver
