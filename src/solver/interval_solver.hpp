// Interval-based pre-pass: refines per-variable bounds from the
// constraint conjunction and detects infeasibility cheaply. The bounds it
// produces seed the enumerative solver's search domains.
#pragma once

#include <span>

#include "expr/interval.hpp"

namespace sde::solver {

enum class Feasibility {
  kInfeasible,  // conjunction proven unsatisfiable
  kUnknown,     // not refuted; env holds sound variable bounds
};

// Runs constraint-directed narrowing to a fixpoint (bounded rounds) and
// then evaluates every constraint in the refined environment.
[[nodiscard]] Feasibility checkIntervals(std::span<const expr::Ref> constraints,
                                         expr::IntervalEnv& env);

}  // namespace sde::solver
