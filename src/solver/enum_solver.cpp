#include "solver/enum_solver.hpp"

#include <algorithm>
#include <vector>

namespace sde::solver {

namespace {

struct SearchVar {
  expr::Ref var = nullptr;
  expr::Interval domain;
  bool sampled = false;          // domain truncated to representatives
  std::vector<std::uint64_t> candidates;
};

// Constraints become checkable as soon as all their variables are
// assigned; checking at the earliest possible depth maximises pruning.
struct CheckPlan {
  // checksAtDepth[d] = constraints whose last variable (in search order)
  // is the variable assigned at depth d.
  std::vector<std::vector<expr::Ref>> checksAtDepth;
};

CheckPlan planChecks(const expr::Context& ctx,
                     std::span<const expr::Ref> constraints,
                     std::span<const SearchVar> order) {
  CheckPlan plan;
  plan.checksAtDepth.resize(order.size());
  std::vector<expr::Ref> noVars;
  for (expr::Ref c : constraints) {
    std::vector<expr::Ref> vars;
    ctx.collectVariables(c, vars);
    std::size_t lastDepth = 0;
    bool found = !vars.empty();
    for (expr::Ref v : vars) {
      const auto it = std::find_if(
          order.begin(), order.end(),
          [&](const SearchVar& sv) { return sv.var == v; });
      SDE_ASSERT(it != order.end(), "constraint variable missing from order");
      lastDepth = std::max(lastDepth,
                           static_cast<std::size_t>(it - order.begin()));
    }
    if (found)
      plan.checksAtDepth[lastDepth].push_back(c);
    // Variable-free constraints are constants and were simplified away by
    // ConstraintSet::add; nothing to schedule.
  }
  return plan;
}

}  // namespace

EnumResult enumerateModels(const expr::Context& ctx,
                           std::span<const expr::Ref> constraints,
                           const expr::IntervalEnv& env,
                           const EnumConfig& config) {
  EnumResult result;
  if (constraints.empty()) {
    result.status = EnumStatus::kSat;
    return result;
  }

  // Gather variables. The order must be context-independent — variables
  // hash by name, so sorting by (structural hash, name) makes the
  // search order, and therefore the first model found, a pure function
  // of the constraint set: any worker in any expr::Context enumerates
  // the identical model for the same query. The cross-worker shared
  // cache relies on exactly this to publish enumerated models as
  // canonical values. (Interning ids, the old key, are allocation-order
  // dependent and differ between contexts.)
  std::vector<expr::Ref> vars;
  for (expr::Ref c : constraints) ctx.collectVariables(c, vars);
  std::sort(vars.begin(), vars.end(), [](expr::Ref a, expr::Ref b) {
    return a->hash() != b->hash() ? a->hash() < b->hash()
                                  : a->name() < b->name();
  });
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  std::vector<SearchVar> order;
  order.reserve(vars.size());
  for (expr::Ref v : vars) {
    SearchVar sv;
    sv.var = v;
    const auto it = env.find(v);
    sv.domain = it == env.end() ? expr::Interval::top(v->width()) : it->second;
    if (sv.domain.size() > config.maxDomainPerVariable) {
      // Representatives: domain boundaries plus a few near-boundary
      // values — typical protocol constraints (==, <, !=) are satisfied
      // at a boundary when satisfiable at all.
      sv.sampled = true;
      const expr::Interval d = sv.domain;
      for (std::uint64_t v2 : {d.lo, d.lo + 1, d.lo + 2, d.hi - 2, d.hi - 1,
                               d.hi, d.lo + (d.hi - d.lo) / 2})
        if (d.contains(v2)) sv.candidates.push_back(v2);
      std::sort(sv.candidates.begin(), sv.candidates.end());
      sv.candidates.erase(
          std::unique(sv.candidates.begin(), sv.candidates.end()),
          sv.candidates.end());
    }
    order.push_back(std::move(sv));
  }

  // Smaller domains first: fail fast, cheap backtracks.
  std::stable_sort(order.begin(), order.end(),
                   [](const SearchVar& a, const SearchVar& b) {
                     return a.domain.size() < b.domain.size();
                   });

  const CheckPlan plan = planChecks(ctx, constraints, order);

  expr::Assignment assignment;
  std::uint64_t tried = 0;
  bool hitSampledVar = false;
  bool hitBudget = false;

  // Iterative DFS with explicit candidate cursors.
  std::vector<std::uint64_t> cursor(order.size(), 0);
  std::size_t depth = 0;
  while (true) {
    if (depth == order.size()) {
      result.status = EnumStatus::kSat;
      result.model = std::move(assignment);
      return result;
    }
    SearchVar& sv = order[depth];
    const std::uint64_t domainCount =
        sv.sampled ? sv.candidates.size() : sv.domain.size();

    bool advanced = false;
    while (cursor[depth] < domainCount) {
      if (++tried > config.maxCandidates) {
        hitBudget = true;
        break;
      }
      const std::uint64_t value = sv.sampled
                                      ? sv.candidates[cursor[depth]]
                                      : sv.domain.lo + cursor[depth];
      ++cursor[depth];
      assignment.set(sv.var, value);
      bool ok = true;
      for (expr::Ref c : plan.checksAtDepth[depth]) {
        const auto v = expr::tryEvaluate(c, assignment);
        SDE_ASSERT(v.has_value(), "check scheduled before vars assigned");
        if (*v == 0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        ++depth;
        if (depth < order.size()) cursor[depth] = 0;
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    if (hitBudget) break;

    // Backtrack.
    if (sv.sampled) hitSampledVar = true;
    assignment.erase(sv.var);
    if (depth == 0) break;
    --depth;
    assignment.erase(order[depth].var);
  }

  result.status = (hitSampledVar || hitBudget) ? EnumStatus::kExhausted
                                               : EnumStatus::kUnsat;
  return result;
}

}  // namespace sde::solver
