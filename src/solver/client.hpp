// The narrow query interface the rest of the system programs against.
// Everything above the solver (VM interpreter, SDE engine, test-case
// generation, benches) sees only these five entry points; the layered
// pipeline, caches and enumeration behind them are implementation
// detail of the concrete Solver. Keeping the client surface this small
// is what lets the pipeline be recomposed — or a whole solver swapped —
// without touching a single call site.
#pragma once

#include <cstdint>
#include <optional>

#include "expr/context.hpp"
#include "expr/eval.hpp"
#include "solver/constraint_set.hpp"

namespace sde::solver {

enum class Validity {
  kTrue,     // holds on every solution of the constraints
  kFalse,    // fails on every solution
  kUnknown,  // satisfiable both ways (a genuine symbolic branch)
};

class SolverClient {
 public:
  virtual ~SolverClient() = default;

  // Is `cond` satisfiable together with `constraints`? An exhausted
  // search answers `true` (sound for exploration: never prunes a
  // feasible path).
  [[nodiscard]] virtual bool mayBeTrue(const ConstraintSet& constraints,
                                       expr::Ref cond) = 0;
  [[nodiscard]] virtual bool mustBeTrue(const ConstraintSet& constraints,
                                        expr::Ref cond) = 0;

  // Classifies a branch condition in one call (used by the VM at every
  // symbolic branch).
  [[nodiscard]] virtual Validity classify(const ConstraintSet& constraints,
                                          expr::Ref cond) = 0;

  // A concrete value `e` can take under `constraints` (the first model
  // found; deterministic). nullopt if the constraints are unsatisfiable.
  [[nodiscard]] virtual std::optional<std::uint64_t> getValue(
      const ConstraintSet& constraints, expr::Ref e) = 0;

  // A full model of `constraints`; variables of the set that are
  // unconstrained within their sliced component get their enumerated
  // value, variables absent from the set entirely are not bound.
  [[nodiscard]] virtual std::optional<expr::Assignment> getModel(
      const ConstraintSet& constraints) = 0;

  [[nodiscard]] virtual expr::Context& context() const = 0;
};

}  // namespace sde::solver
