// Query caching for the SDE workload profile: thousands of states share
// long identical constraint prefixes, so (a) an exact-key result cache
// and (b) reuse of recently found models (a model satisfying the new
// query proves SAT without any search) both hit very often.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "expr/context.hpp"
#include "expr/eval.hpp"
#include "solver/enum_solver.hpp"

namespace sde::solver {

// Canonical cache key: the constraint conjunction as a sorted vector of
// interned nodes (sorting makes the key order-independent; interning
// makes pointer comparison structural).
using QueryKey = std::vector<expr::Ref>;

[[nodiscard]] QueryKey makeQueryKey(std::span<const expr::Ref> constraints);

class QueryCache {
 public:
  struct KeyHash {
    std::size_t operator()(const QueryKey& key) const;
  };

  explicit QueryCache(std::size_t maxRecentModels = 8)
      : maxRecentModels_(maxRecentModels) {}

  // Exact-key result lookup.
  [[nodiscard]] const EnumResult* lookup(const QueryKey& key) const;
  void insert(const QueryKey& key, EnumResult result);

  // Tries each recently stored model against `constraints`; returns the
  // first satisfying one. Unbound variables default to zero (sound:
  // satisfaction is verified by evaluation, never assumed).
  [[nodiscard]] std::optional<expr::Assignment> reuseModel(
      const expr::Context& ctx,
      std::span<const expr::Ref> constraints) const;

  // Merges `other` into this cache (the post-run barrier of the parallel
  // execution mode: per-worker caches accumulate into one). Result
  // entries are unioned — when both caches solved the same canonical
  // key the results are necessarily equal, so existing entries win —
  // and the recent-model pool keeps the newest models of both caches up
  // to the retention bound. Merging never fabricates an entry for a
  // constraint set neither cache actually solved.
  void mergeFrom(const QueryCache& other);

  [[nodiscard]] std::size_t size() const { return results_.size(); }
  [[nodiscard]] std::size_t numRecentModels() const {
    return recentModels_.size();
  }
  void clear();

  // --- Snapshot support ----------------------------------------------------
  // The recent-model deque is ordered state: reuseModel() returns the
  // *first* satisfying model, so a restored cache must reproduce the
  // deque exactly or resumed runs could pin symbolic values to
  // different (equally valid) models than the uninterrupted run.
  [[nodiscard]] const std::unordered_map<QueryKey, EnumResult, KeyHash>&
  results() const {
    return results_;
  }
  [[nodiscard]] const std::deque<expr::Assignment>& recentModels() const {
    return recentModels_;
  }
  void restoreSnapshot(std::vector<std::pair<QueryKey, EnumResult>> results,
                       std::deque<expr::Assignment> models);

 private:
  std::unordered_map<QueryKey, EnumResult, KeyHash> results_;
  std::deque<expr::Assignment> recentModels_;
  std::size_t maxRecentModels_;
};

}  // namespace sde::solver
