// Query caching for the SDE workload profile: thousands of states share
// long identical constraint prefixes, so (a) an exact-key result cache,
// (b) reuse of recently found models (a model satisfying the new query
// proves SAT without any search), and (c) subsumption over the whole
// result store — a cached UNSAT key that is a *subset* of the query
// proves the query UNSAT, and any cached model satisfying the query
// proves it SAT (KLEE-style counterexample reuse) — all hit very often.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "expr/context.hpp"
#include "expr/eval.hpp"
#include "solver/enum_solver.hpp"

namespace sde::solver {

// Canonical cache key: the constraint conjunction as a sorted vector of
// interned nodes (sorting makes the key order-independent; interning
// makes pointer comparison structural). Trivially-true conjuncts are
// dropped before sorting so tautologies never pollute the key space:
// {x<5, true} and {x<5} share one cache entry.
using QueryKey = std::vector<expr::Ref>;

[[nodiscard]] QueryKey makeQueryKey(std::span<const expr::Ref> constraints);

class QueryCache {
 public:
  struct KeyHash {
    std::size_t operator()(const QueryKey& key) const;
  };

  explicit QueryCache(std::size_t maxRecentModels = 8,
                      std::size_t maxPoolModels = 64)
      : maxRecentModels_(maxRecentModels), maxPoolModels_(maxPoolModels) {}

  // Exact-key result lookup.
  [[nodiscard]] const EnumResult* lookup(const QueryKey& key) const;
  void insert(const QueryKey& key, EnumResult result);

  // Tries each recently stored model against `constraints`; returns the
  // first satisfying one. Unbound variables default to zero (sound:
  // satisfaction is verified by evaluation, never assumed).
  [[nodiscard]] std::optional<expr::Assignment> reuseModel(
      const expr::Context& ctx,
      std::span<const expr::Ref> constraints) const;

  // --- Subsumption (the pipeline's fourth layer) -----------------------------
  // Is some cached-UNSAT key a subset of `key`? A superset of an
  // unsatisfiable conjunction is unsatisfiable, so a hit proves UNSAT
  // without touching the query itself. Backed by an inverted index
  // (constraint -> UNSAT keys containing it), so the cost is the
  // postings touched, not the store size.
  [[nodiscard]] bool subsumesUnsat(const QueryKey& key) const;

  // Counterexample reuse beyond the recent-model window: tries the
  // longer-lived model pool (every distinct solved SAT result feeds it,
  // FIFO-bounded) the same verified way reuseModel does.
  [[nodiscard]] std::optional<expr::Assignment> reusePoolModel(
      const expr::Context& ctx,
      std::span<const expr::Ref> constraints) const;

  // Merges `other` into this cache (the legacy post-run barrier of the
  // parallel execution mode, kept for offline aggregation; live runs
  // share through SharedQueryCache instead). Result entries are
  // unioned — when both caches solved the same canonical key the
  // results are necessarily equal, so existing entries win — and the
  // model windows keep the newest models of both caches up to their
  // retention bounds. Merging never fabricates an entry for a
  // constraint set neither cache actually solved.
  void mergeFrom(const QueryCache& other);

  [[nodiscard]] std::size_t size() const { return results_.size(); }
  [[nodiscard]] std::size_t numRecentModels() const {
    return recentModels_.size();
  }
  [[nodiscard]] std::size_t numPoolModels() const {
    return poolModels_.size();
  }
  [[nodiscard]] std::size_t numUnsatKeys() const { return unsatKeys_.size(); }
  void clear();

  // --- Snapshot support ----------------------------------------------------
  // The model deques are ordered state: reuseModel()/reusePoolModel()
  // return the *first* satisfying model, so a restored cache must
  // reproduce both deques exactly or resumed runs could pin symbolic
  // values to different (equally valid) models than the uninterrupted
  // run. The UNSAT subsumption index is derived state: restoreSnapshot
  // rebuilds it from the restored result entries.
  [[nodiscard]] const std::unordered_map<QueryKey, EnumResult, KeyHash>&
  results() const {
    return results_;
  }
  [[nodiscard]] const std::deque<expr::Assignment>& recentModels() const {
    return recentModels_;
  }
  [[nodiscard]] const std::deque<expr::Assignment>& poolModels() const {
    return poolModels_;
  }
  void restoreSnapshot(std::vector<std::pair<QueryKey, EnumResult>> results,
                       std::deque<expr::Assignment> recentModels,
                       std::deque<expr::Assignment> poolModels);

 private:
  // Registers a newly inserted key in the subsumption stores.
  void indexResult(const QueryKey& key, const EnumResult& result);
  [[nodiscard]] std::optional<expr::Assignment> reuseFrom(
      const std::deque<expr::Assignment>& models, const expr::Context& ctx,
      std::span<const expr::Ref> constraints) const;

  std::unordered_map<QueryKey, EnumResult, KeyHash> results_;
  std::deque<expr::Assignment> recentModels_;
  std::deque<expr::Assignment> poolModels_;
  // Inverted index over the UNSAT result keys: unsatKeys_[i] is the
  // size of UNSAT key i, unsatPostings_[c] lists the UNSAT keys
  // containing constraint c. Derived from results_; never serialized.
  std::vector<std::uint32_t> unsatKeys_;
  std::unordered_map<expr::Ref, std::vector<std::uint32_t>> unsatPostings_;
  std::size_t maxRecentModels_;
  std::size_t maxPoolModels_;
};

}  // namespace sde::solver
