#include "solver/cache.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace sde::solver {

QueryKey makeQueryKey(std::span<const expr::Ref> constraints) {
  QueryKey key(constraints.begin(), constraints.end());
  // Sort by structural hash (stable across runs), breaking the
  // astronomically-unlikely ties by pointer for total order within a run.
  std::sort(key.begin(), key.end(), [](expr::Ref a, expr::Ref b) {
    return a->hash() != b->hash() ? a->hash() < b->hash() : a < b;
  });
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

std::size_t QueryCache::KeyHash::operator()(const QueryKey& key) const {
  support::Hasher h;
  for (expr::Ref c : key) h.u64(c->hash());
  return static_cast<std::size_t>(h.digest());
}

const EnumResult* QueryCache::lookup(const QueryKey& key) const {
  const auto it = results_.find(key);
  return it == results_.end() ? nullptr : &it->second;
}

void QueryCache::insert(const QueryKey& key, EnumResult result) {
  if (result.status == EnumStatus::kSat) {
    recentModels_.push_front(result.model);
    if (recentModels_.size() > maxRecentModels_) recentModels_.pop_back();
  }
  results_.emplace(key, std::move(result));
}

std::optional<expr::Assignment> QueryCache::reuseModel(
    const expr::Context& ctx,
    std::span<const expr::Ref> constraints) const {
  std::vector<expr::Ref> queryVars;
  for (expr::Ref c : constraints) ctx.collectVariables(c, queryVars);

  for (const expr::Assignment& model : recentModels_) {
    // Build a candidate restricted to the query's own variables (zero
    // where the stored model is silent). Restricting matters: callers
    // merge per-component models, and stray bindings for unrelated
    // variables would clobber other components' results.
    expr::Assignment candidate;
    for (expr::Ref v : queryVars) candidate.set(v, model.get(v).value_or(0));
    const bool satisfies =
        std::all_of(constraints.begin(), constraints.end(), [&](expr::Ref c) {
          return expr::evaluate(c, candidate) != 0;
        });
    if (satisfies) return candidate;
  }
  return std::nullopt;
}

void QueryCache::mergeFrom(const QueryCache& other) {
  for (const auto& [key, result] : other.results_) results_.emplace(key, result);
  for (auto it = other.recentModels_.rbegin(); it != other.recentModels_.rend();
       ++it)
    recentModels_.push_front(*it);
  while (recentModels_.size() > maxRecentModels_) recentModels_.pop_back();
}

void QueryCache::restoreSnapshot(
    std::vector<std::pair<QueryKey, EnumResult>> results,
    std::deque<expr::Assignment> models) {
  clear();
  for (auto& [key, result] : results)
    results_.emplace(std::move(key), std::move(result));
  recentModels_ = std::move(models);
  while (recentModels_.size() > maxRecentModels_) recentModels_.pop_back();
}

void QueryCache::clear() {
  results_.clear();
  recentModels_.clear();
}

}  // namespace sde::solver
