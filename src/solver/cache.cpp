#include "solver/cache.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace sde::solver {

QueryKey makeQueryKey(std::span<const expr::Ref> constraints) {
  QueryKey key;
  key.reserve(constraints.size());
  // Tautological conjuncts carry no information; dropping them before
  // sorting makes {x<5, true} and {x<5} the same key (and lets the
  // all-true conjunction collapse to the empty key, answered without
  // touching any cache).
  for (expr::Ref c : constraints)
    if (!c->isTrue()) key.push_back(c);
  // Sort by structural hash (stable across runs), breaking the
  // astronomically-unlikely ties by pointer for total order within a run.
  std::sort(key.begin(), key.end(), [](expr::Ref a, expr::Ref b) {
    return a->hash() != b->hash() ? a->hash() < b->hash() : a < b;
  });
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

std::size_t QueryCache::KeyHash::operator()(const QueryKey& key) const {
  support::Hasher h;
  for (expr::Ref c : key) h.u64(c->hash());
  return static_cast<std::size_t>(h.digest());
}

const EnumResult* QueryCache::lookup(const QueryKey& key) const {
  const auto it = results_.find(key);
  return it == results_.end() ? nullptr : &it->second;
}

void QueryCache::insert(const QueryKey& key, EnumResult result) {
  if (result.status == EnumStatus::kSat) {
    recentModels_.push_front(result.model);
    if (recentModels_.size() > maxRecentModels_) recentModels_.pop_back();
  }
  const auto [it, inserted] = results_.emplace(key, std::move(result));
  if (inserted) indexResult(it->first, it->second);
}

void QueryCache::indexResult(const QueryKey& key, const EnumResult& result) {
  switch (result.status) {
    case EnumStatus::kUnsat: {
      const auto id = static_cast<std::uint32_t>(unsatKeys_.size());
      unsatKeys_.push_back(static_cast<std::uint32_t>(key.size()));
      for (expr::Ref c : key) unsatPostings_[c].push_back(id);
      break;
    }
    case EnumStatus::kSat:
      poolModels_.push_front(result.model);
      if (poolModels_.size() > maxPoolModels_) poolModels_.pop_back();
      break;
    case EnumStatus::kExhausted:
      break;
  }
}

bool QueryCache::subsumesUnsat(const QueryKey& key) const {
  if (unsatKeys_.empty() || key.empty()) return false;
  // Count, per cached UNSAT key, how many of its conjuncts appear in
  // the query. A key whose count reaches its size is a subset of the
  // query; the query then contains an unsatisfiable core. (Keys are
  // deduplicated, so counting occurrences is counting distinct members.)
  std::unordered_map<std::uint32_t, std::uint32_t> seen;
  for (expr::Ref c : key) {
    const auto it = unsatPostings_.find(c);
    if (it == unsatPostings_.end()) continue;
    for (const std::uint32_t id : it->second) {
      // Exact matches are the exact-key layer's job; subsumption only
      // needs proper subsets, but catching equality here is harmless.
      if (++seen[id] == unsatKeys_[id]) return true;
    }
  }
  return false;
}

std::optional<expr::Assignment> QueryCache::reuseFrom(
    const std::deque<expr::Assignment>& models, const expr::Context& ctx,
    std::span<const expr::Ref> constraints) const {
  std::vector<expr::Ref> queryVars;
  for (expr::Ref c : constraints) ctx.collectVariables(c, queryVars);

  for (const expr::Assignment& model : models) {
    // Build a candidate restricted to the query's own variables (zero
    // where the stored model is silent). Restricting matters: callers
    // merge per-component models, and stray bindings for unrelated
    // variables would clobber other components' results.
    expr::Assignment candidate;
    for (expr::Ref v : queryVars) candidate.set(v, model.get(v).value_or(0));
    const bool satisfies =
        std::all_of(constraints.begin(), constraints.end(), [&](expr::Ref c) {
          return expr::evaluate(c, candidate) != 0;
        });
    if (satisfies) return candidate;
  }
  return std::nullopt;
}

std::optional<expr::Assignment> QueryCache::reuseModel(
    const expr::Context& ctx, std::span<const expr::Ref> constraints) const {
  return reuseFrom(recentModels_, ctx, constraints);
}

std::optional<expr::Assignment> QueryCache::reusePoolModel(
    const expr::Context& ctx, std::span<const expr::Ref> constraints) const {
  return reuseFrom(poolModels_, ctx, constraints);
}

void QueryCache::mergeFrom(const QueryCache& other) {
  for (const auto& [key, result] : other.results_) {
    const auto [it, inserted] = results_.emplace(key, result);
    if (inserted && it->second.status == EnumStatus::kUnsat)
      indexResult(it->first, it->second);
  }
  for (auto it = other.recentModels_.rbegin(); it != other.recentModels_.rend();
       ++it)
    recentModels_.push_front(*it);
  while (recentModels_.size() > maxRecentModels_) recentModels_.pop_back();
  for (auto it = other.poolModels_.rbegin(); it != other.poolModels_.rend();
       ++it)
    poolModels_.push_front(*it);
  while (poolModels_.size() > maxPoolModels_) poolModels_.pop_back();
}

void QueryCache::restoreSnapshot(
    std::vector<std::pair<QueryKey, EnumResult>> results,
    std::deque<expr::Assignment> recentModels,
    std::deque<expr::Assignment> poolModels) {
  clear();
  for (auto& [key, result] : results) {
    const auto [it, inserted] = results_.emplace(std::move(key),
                                                 std::move(result));
    // Rebuild the UNSAT subsumption index from the restored results
    // (the model pool, being ordered history, is restored verbatim
    // below rather than re-derived).
    if (inserted && it->second.status == EnumStatus::kUnsat) {
      const auto id = static_cast<std::uint32_t>(unsatKeys_.size());
      unsatKeys_.push_back(static_cast<std::uint32_t>(it->first.size()));
      for (expr::Ref c : it->first) unsatPostings_[c].push_back(id);
    }
  }
  recentModels_ = std::move(recentModels);
  while (recentModels_.size() > maxRecentModels_) recentModels_.pop_back();
  poolModels_ = std::move(poolModels);
  while (poolModels_.size() > maxPoolModels_) poolModels_.pop_back();
}

void QueryCache::clear() {
  results_.clear();
  recentModels_.clear();
  poolModels_.clear();
  unsatKeys_.clear();
  unsatPostings_.clear();
}

}  // namespace sde::solver
