#include "solver/independence.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace sde::solver {

namespace {

using VarsOf = std::vector<std::vector<expr::Ref>>;

VarsOf collectVarsPerConstraint(const expr::Context& ctx,
                                std::span<const expr::Ref> constraints) {
  VarsOf vars(constraints.size());
  for (std::size_t i = 0; i < constraints.size(); ++i)
    ctx.collectVariables(constraints[i], vars[i]);
  return vars;
}

}  // namespace

std::vector<expr::Ref> sliceForQuery(const expr::Context& ctx,
                                     std::span<const expr::Ref> constraints,
                                     expr::Ref query) {
  SDE_ASSERT(query != nullptr, "sliceForQuery requires a query");
  const VarsOf vars = collectVarsPerConstraint(ctx, constraints);

  std::unordered_set<expr::Ref> reached;
  {
    std::vector<expr::Ref> queryVars;
    ctx.collectVariables(query, queryVars);
    reached.insert(queryVars.begin(), queryVars.end());
  }

  std::vector<bool> used(constraints.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      if (used[i]) continue;
      const bool touches =
          std::any_of(vars[i].begin(), vars[i].end(),
                      [&](expr::Ref v) { return reached.contains(v); });
      if (!touches) continue;
      used[i] = true;
      changed = true;
      reached.insert(vars[i].begin(), vars[i].end());
    }
  }

  std::vector<expr::Ref> slice;
  for (std::size_t i = 0; i < constraints.size(); ++i)
    if (used[i]) slice.push_back(constraints[i]);
  return slice;
}

std::vector<std::vector<expr::Ref>> splitComponents(
    const expr::Context& ctx, std::span<const expr::Ref> constraints) {
  const VarsOf vars = collectVarsPerConstraint(ctx, constraints);

  // Union-find over constraint indices, joined through shared variables.
  std::vector<std::size_t> parent(constraints.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  std::unordered_map<expr::Ref, std::size_t> firstUse;
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    for (expr::Ref v : vars[i]) {
      auto [it, inserted] = firstUse.emplace(v, i);
      if (!inserted) unite(it->second, i);
    }
  }

  // Deterministic component order: by lowest member constraint index.
  std::map<std::size_t, std::vector<expr::Ref>> byRoot;
  for (std::size_t i = 0; i < constraints.size(); ++i)
    byRoot[find(i)].push_back(constraints[i]);

  std::vector<std::vector<expr::Ref>> components;
  components.reserve(byRoot.size());
  for (auto& [root, group] : byRoot) components.push_back(std::move(group));
  return components;
}

}  // namespace sde::solver
