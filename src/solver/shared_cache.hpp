// Cross-worker shared query cache (the live replacement for the old
// post-run-only per-worker cache merge).
//
// Partition jobs of a parallel run explore overlapping constraint
// prefixes — "Divide, Conquer and Verify"-style sharing of solved
// queries across workers is where most redundant solver time goes. Each
// worker's solver consults this cache *during* exploration and
// publishes the results it computes, so a query any worker has already
// solved is never enumerated again anywhere in the fleet.
//
// Two properties make live sharing safe:
//
//  * Context independence. Workers own disjoint expr::Contexts, so Refs
//    cannot cross threads. Keys are the sorted structural-hash vectors
//    of the canonical query key (variables hash by name, so the same
//    conjunction built in any context produces the same key), and
//    models are serialized per variable as (name, width, value) and
//    re-interned by the consumer.
//
//  * Canonical values only. The cache accepts exclusively results whose
//    content is a pure function of the structural key — interval
//    refutations and enumerated models (enumeration orders variables by
//    structural hash, not by context-local interning ids, exactly so
//    that every worker would compute the identical model). History-
//    dependent answers (recent-model reuse, subsumption) are never
//    published. First writer wins; because values are canonical, the
//    winner is irrelevant and exploration results stay byte-identical
//    for any worker count, with the cache on or off.
//
// Internally the key space is sharded over independently locked
// buckets (mutex striping), so concurrent workers rarely contend.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/context.hpp"
#include "expr/eval.hpp"
#include "solver/cache.hpp"
#include "solver/enum_solver.hpp"
#include "support/hash.hpp"

namespace sde::solver {

// Context-independent rendering of a canonical QueryKey: the structural
// hash of each conjunct, in key order (the key is already sorted by
// hash). Equal conjunction sets produce equal hash vectors in every
// context; distinct sets collide only on a 64-bit structural-hash
// collision (the same astronomically-unlikely event the per-worker
// cache's hash-sorted key order already relies on).
using SharedQueryKey = std::vector<std::uint64_t>;

[[nodiscard]] SharedQueryKey makeSharedQueryKey(const QueryKey& key);

// One variable binding of a shared model, by name (the cross-context
// identity of a variable).
struct SharedBinding {
  std::string name;
  unsigned width = 0;
  std::uint64_t value = 0;

  [[nodiscard]] bool operator==(const SharedBinding&) const = default;
};

// A cached canonical result: the enum status plus, for kSat, the
// canonical model (name-sorted bindings).
struct SharedQueryResult {
  EnumStatus status = EnumStatus::kExhausted;
  std::vector<SharedBinding> model;

  [[nodiscard]] bool operator==(const SharedQueryResult&) const = default;
};

// Converts between worker-local results and the shared representation.
[[nodiscard]] SharedQueryResult toSharedResult(const EnumResult& result);
[[nodiscard]] EnumResult fromSharedResult(expr::Context& ctx,
                                          const SharedQueryResult& result);

// The store interface the solver pipeline shares queries through. Two
// implementations: the in-process mutex-striped SharedQueryCache below
// (threads of one partitioned run) and the process-external
// solver::ShmQueryCache (worker processes of a fleet run, see
// shm_cache.hpp). Both obey the same contract — context-independent
// keys, canonical values only, first writer wins — so exploration
// results are byte-identical whichever store (or none) is attached.
class SharedQueryStore {
 public:
  virtual ~SharedQueryStore() = default;

  // Thread-safe. Returns the cached result by value (a reference could
  // dangle or point into concurrently mutated storage).
  [[nodiscard]] virtual std::optional<SharedQueryResult> lookup(
      const SharedQueryKey& key) const = 0;

  // Thread-safe. First writer wins: once a key holds a result, later
  // inserts (necessarily equal — only canonical values are published)
  // are dropped. Best-effort: a full fixed-size store may drop inserts.
  virtual void insert(const SharedQueryKey& key,
                      SharedQueryResult result) = 0;
};

class SharedQueryCache final : public SharedQueryStore {
 public:
  explicit SharedQueryCache(std::size_t shards = 16);
  SharedQueryCache(const SharedQueryCache&) = delete;
  SharedQueryCache& operator=(const SharedQueryCache&) = delete;

  // Thread-safe. Returns the cached result by value (a reference would
  // dangle once another thread rehashes the shard).
  [[nodiscard]] std::optional<SharedQueryResult> lookup(
      const SharedQueryKey& key) const override;

  // Thread-safe. First writer wins: once a key holds a result, later
  // inserts (necessarily equal — only canonical values are published)
  // are dropped.
  void insert(const SharedQueryKey& key, SharedQueryResult result) override;

  // Thread-safe counters (relaxed; reporting only).
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }

  // Thread-safe (each shard locked in turn) but not atomic across
  // shards: concurrent inserts may or may not be counted.
  [[nodiscard]] std::size_t size() const;
  void clear();

  // Deterministic enumeration for snapshot serialization: every entry,
  // sorted by key. Same cross-shard caveat as size().
  [[nodiscard]] std::vector<std::pair<SharedQueryKey, SharedQueryResult>>
  sortedEntries() const;

  struct KeyHash {
    std::size_t operator()(const SharedQueryKey& key) const;
  };

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<SharedQueryKey, SharedQueryResult, KeyHash> map;
  };

  [[nodiscard]] Shard& shardFor(const SharedQueryKey& key) const;

  mutable std::vector<Shard> shards_;
  std::size_t shardMask_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
};

}  // namespace sde::solver
