#include "solver/solver.hpp"

#include <vector>

namespace sde::solver {

void Solver::traceQuery(obs::SolverLayerDetail detail, std::size_t conjuncts,
                        EnumStatus status) {
  if (trace_ == nullptr) return;
  obs::TraceEvent event;
  event.kind = obs::TraceEventKind::kSolverQuery;
  event.detail = static_cast<std::uint8_t>(detail);
  event.a = conjuncts;
  switch (status) {
    case EnumStatus::kUnsat: event.b = 0; break;
    case EnumStatus::kSat: event.b = 1; break;
    case EnumStatus::kExhausted: event.b = 2; break;
  }
  trace_->emit(event);
}

EnumResult Solver::solveConjunction(std::span<const expr::Ref> conjunction,
                                    bool needModel) {
  stats_.bump("solver.queries");
  if (recorder_) recorder_(conjunction, needModel);
  if (!config_.usePipeline) return solveConjunctionMonolithic(conjunction);

  LayerAnswer answer = pipeline_.solve(conjunction, needModel);
  // A zero detail marks an untraced answer (the vacuously-true empty
  // key — not solver work, and the monolithic path never traced it).
  if (static_cast<std::uint8_t>(answer.detail) != 0)
    traceQuery(answer.detail, conjunction.size(), answer.result.status);
  return std::move(answer.result);
}

EnumResult Solver::solveConjunctionMonolithic(
    std::span<const expr::Ref> conjunction) {
  // Constant shortcuts.
  for (expr::Ref c : conjunction) {
    if (c->isFalse()) {
      stats_.bump("solver.constant_refutations");
      traceQuery(obs::SolverLayerDetail::kConstant, conjunction.size(),
                 EnumStatus::kUnsat);
      return {EnumStatus::kUnsat, {}};
    }
  }

  const QueryKey key = makeQueryKey(conjunction);
  if (key.empty()) return {EnumStatus::kSat, {}};

  if (config_.useCache) {
    if (const EnumResult* hit = cache_.lookup(key)) {
      stats_.bump("solver.cache_hits");
      traceQuery(obs::SolverLayerDetail::kCacheHit, conjunction.size(),
                 hit->status);
      return *hit;
    }
    if (auto model = cache_.reuseModel(ctx_, key)) {
      stats_.bump("solver.model_reuse_hits");
      traceQuery(obs::SolverLayerDetail::kModelReuse, conjunction.size(),
                 EnumStatus::kSat);
      EnumResult r{EnumStatus::kSat, std::move(*model)};
      cache_.insert(key, r);
      return r;
    }
  }

  expr::IntervalEnv env;
  if (config_.useIntervals) {
    if (checkIntervals(key, env) == Feasibility::kInfeasible) {
      stats_.bump("solver.interval_refutations");
      traceQuery(obs::SolverLayerDetail::kInterval, conjunction.size(),
                 EnumStatus::kUnsat);
      EnumResult r{EnumStatus::kUnsat, {}};
      if (config_.useCache) cache_.insert(key, r);
      return r;
    }
  }

  stats_.bump("solver.enum_runs");
  EnumResult r = enumerateModels(ctx_, key, env, config_.enumeration);
  if (r.status == EnumStatus::kExhausted) stats_.bump("solver.exhausted");
  traceQuery(obs::SolverLayerDetail::kEnumerated, conjunction.size(),
             r.status);
  if (config_.useCache) cache_.insert(key, r);
  return r;
}

bool Solver::mayBeTrue(const ConstraintSet& constraints, expr::Ref cond) {
  obs::ScopedPhase scope(profiler_, obs::Phase::kSolver);
  SDE_ASSERT(cond->width() == 1, "mayBeTrue expects a boolean condition");
  if (cond->isFalse()) return false;
  // A variable-free condition carries no variables for the independence
  // slice to anchor on; the query degenerates to "are the constraints
  // satisfiable at all", which must consider every component.
  // Flatten the chunked constraint sequence once: the independence
  // slicer and component splitter work over contiguous spans.
  const std::vector<expr::Ref> all = constraints.toVector();
  if (cond->isTrue()) {
    for (const auto& component : splitComponents(ctx_, all))
      if (solveConjunction(component, /*needModel=*/false).status ==
          EnumStatus::kUnsat)
        return false;
    return true;
  }

  std::vector<expr::Ref> conj;
  if (config_.useIndependence) {
    conj = sliceForQuery(ctx_, all, cond);
    stats_.bump("solver.sliced_away", all.size() - conj.size());
  } else {
    conj = all;
  }
  conj.push_back(cond);

  const EnumResult r = solveConjunction(conj, /*needModel=*/false);
  // kExhausted over-approximates to "maybe": exploration stays sound.
  return r.status != EnumStatus::kUnsat;
}

bool Solver::mustBeTrue(const ConstraintSet& constraints, expr::Ref cond) {
  return !mayBeTrue(constraints, ctx_.logicalNot(cond));
}

Validity Solver::classify(const ConstraintSet& constraints, expr::Ref cond) {
  const bool canBeTrue = mayBeTrue(constraints, cond);
  if (!canBeTrue) return Validity::kFalse;
  const bool canBeFalse = mayBeTrue(constraints, ctx_.logicalNot(cond));
  return canBeFalse ? Validity::kUnknown : Validity::kTrue;
}

std::optional<std::uint64_t> Solver::getValue(const ConstraintSet& constraints,
                                              expr::Ref e) {
  if (e->isConstant()) return e->value();
  obs::ScopedPhase scope(profiler_, obs::Phase::kSolver);

  std::vector<expr::Ref> conj = constraints.toVector();
  if (config_.useIndependence) conj = sliceForQuery(ctx_, conj, e);

  const EnumResult r = solveConjunction(conj, /*needModel=*/true);
  if (r.status == EnumStatus::kUnsat) return std::nullopt;

  expr::Assignment model = r.model;
  std::vector<expr::Ref> vars;
  ctx_.collectVariables(e, vars);
  for (expr::Ref v : vars)
    if (!model.get(v)) model.set(v, 0);
  return expr::evaluate(e, model);
}

std::optional<expr::Assignment> Solver::getModel(
    const ConstraintSet& constraints) {
  obs::ScopedPhase scope(profiler_, obs::Phase::kSolver);
  // Solve each independent component separately and merge: exponentially
  // cheaper than one joint enumeration and exactly as complete.
  expr::Assignment merged;
  const std::vector<expr::Ref> all = constraints.toVector();
  for (const auto& component : splitComponents(ctx_, all)) {
    const EnumResult r = solveConjunction(component, /*needModel=*/true);
    if (r.status == EnumStatus::kUnsat) return std::nullopt;
    if (r.status == EnumStatus::kExhausted) {
      stats_.bump("solver.model_exhausted");
      return std::nullopt;
    }
    for (const auto& [var, value] : r.model.entries()) merged.set(var, value);
  }
  return merged;
}

}  // namespace sde::solver
