// The solver facade the VM and SDE engine talk to, behind the narrow
// SolverClient interface. Mirrors the query API KLEE exposes to its
// executor (mayBeTrue / mustBeTrue / getValue / getInitialValues).
// Queries run through the layered SolverPipeline (see pipeline.hpp):
// constant-fold, canonicalize, exact cache, subsumption, shared cache,
// interval refutation, enumeration — with independence slicing applied
// up front, per query, before the pipeline sees the conjunction. The
// pre-pipeline monolithic path is kept behind SolverConfig::usePipeline
// for differential testing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"
#include "solver/cache.hpp"
#include "solver/client.hpp"
#include "solver/constraint_set.hpp"
#include "solver/independence.hpp"
#include "solver/interval_solver.hpp"
#include "solver/pipeline.hpp"
#include "support/stats.hpp"

namespace sde::solver {

class Solver final : public SolverClient {
 public:
  explicit Solver(expr::Context& ctx, SolverConfig config = {})
      : ctx_(ctx), config_(config), pipeline_(ctx_, config_, cache_, stats_) {}

  // Is `cond` satisfiable together with `constraints`? An exhausted
  // search answers `true` (sound for exploration: never prunes a feasible
  // path; tracked in stats as an over-approximation).
  [[nodiscard]] bool mayBeTrue(const ConstraintSet& constraints,
                               expr::Ref cond) override;
  [[nodiscard]] bool mustBeTrue(const ConstraintSet& constraints,
                                expr::Ref cond) override;

  // Classifies a branch condition in one call (used by the VM at every
  // symbolic branch).
  [[nodiscard]] Validity classify(const ConstraintSet& constraints,
                                  expr::Ref cond) override;

  // A concrete value `e` can take under `constraints` (the first model
  // found; deterministic). nullopt if the constraints are unsatisfiable.
  [[nodiscard]] std::optional<std::uint64_t> getValue(
      const ConstraintSet& constraints, expr::Ref e) override;

  // A full model of `constraints`; variables of the set that are
  // unconstrained within their sliced component get their enumerated
  // value, variables absent from the set entirely are not bound.
  [[nodiscard]] std::optional<expr::Assignment> getModel(
      const ConstraintSet& constraints) override;

  [[nodiscard]] const support::StatsRegistry& stats() const { return stats_; }
  support::StatsRegistry& stats() { return stats_; }
  [[nodiscard]] expr::Context& context() const override { return ctx_; }
  // The query cache, exposed for checkpointing and the offline merge of
  // per-worker caches (live runs share through the SharedQueryCache).
  [[nodiscard]] QueryCache& cache() { return cache_; }
  [[nodiscard]] const QueryCache& cache() const { return cache_; }

  // Attaches the cross-worker shared cache (not owned; must outlive
  // this solver). The pipeline consults it live on every query that
  // misses the local layers and publishes canonical results back.
  void setSharedCache(SharedQueryStore* shared) {
    pipeline_.setSharedCache(shared);
  }
  [[nodiscard]] SharedQueryStore* sharedCache() const {
    return pipeline_.sharedCache();
  }

  [[nodiscard]] const SolverPipeline& pipeline() const { return pipeline_; }
  [[nodiscard]] const SolverConfig& config() const { return config_; }

  // Observability (obs/): a trace sink records every non-trivial query
  // with its answer source (the pipeline layer that produced it); the
  // profiler charges solver wall-time to Phase::kSolver. Both are
  // nullptr by default (zero cost) and typically installed by
  // Engine::setTraceSink / setProfiler.
  void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }
  void setProfiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }
  // Live metrics registry (per-layer latency histograms); nullptr by
  // default, forwarded to the pipeline.
  void setMetrics(obs::MetricsRegistry* metrics) {
    pipeline_.setMetrics(metrics);
  }

  // Captures every solved conjunction (post-slicing, pre-pipeline) —
  // the raw query stream of a run, which bench_solver records from a
  // real exploration and replays against differently composed
  // pipelines. Zero cost when unset.
  using QueryRecorder =
      std::function<void(std::span<const expr::Ref>, bool needModel)>;
  void setQueryRecorder(QueryRecorder recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  // Satisfiability of an explicit conjunction (after slicing).
  // `needModel` tells the pipeline whether the caller consumes the
  // model or only the status.
  EnumResult solveConjunction(std::span<const expr::Ref> conjunction,
                              bool needModel);
  // The pre-pipeline monolithic if-chain, preserved for differential
  // testing (SolverConfig::usePipeline = false).
  EnumResult solveConjunctionMonolithic(
      std::span<const expr::Ref> conjunction);
  void traceQuery(obs::SolverLayerDetail detail, std::size_t conjuncts,
                  EnumStatus status);

  expr::Context& ctx_;  // non-const: queries intern new (negated) terms
  SolverConfig config_;
  QueryCache cache_;
  support::StatsRegistry stats_;
  SolverPipeline pipeline_;  // after cache_/stats_: holds references
  obs::TraceSink* trace_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  QueryRecorder recorder_;
};

}  // namespace sde::solver
