// The solver facade the VM and SDE engine talk to. Mirrors the query API
// KLEE exposes to its executor (mayBeTrue / mustBeTrue / getValue /
// getInitialValues) and stacks the same kind of optimisation layers:
// simplification (done at construction in expr::Context), independence
// slicing, interval refutation, cached results, model reuse, and finally
// complete enumeration.
#pragma once

#include <cstdint>
#include <optional>

#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"
#include "solver/cache.hpp"
#include "solver/constraint_set.hpp"
#include "solver/independence.hpp"
#include "solver/interval_solver.hpp"
#include "support/stats.hpp"

namespace sde::solver {

struct SolverConfig {
  bool useIndependence = true;
  bool useIntervals = true;
  bool useCache = true;
  EnumConfig enumeration;
};

enum class Validity {
  kTrue,     // holds on every solution of the constraints
  kFalse,    // fails on every solution
  kUnknown,  // satisfiable both ways (a genuine symbolic branch)
};

class Solver {
 public:
  explicit Solver(expr::Context& ctx, SolverConfig config = {})
      : ctx_(ctx), config_(config) {}

  // Is `cond` satisfiable together with `constraints`? An exhausted
  // search answers `true` (sound for exploration: never prunes a feasible
  // path; tracked in stats as an over-approximation).
  [[nodiscard]] bool mayBeTrue(const ConstraintSet& constraints,
                               expr::Ref cond);
  [[nodiscard]] bool mustBeTrue(const ConstraintSet& constraints,
                                expr::Ref cond);

  // Classifies a branch condition in one call (used by the VM at every
  // symbolic branch).
  [[nodiscard]] Validity classify(const ConstraintSet& constraints,
                                  expr::Ref cond);

  // A concrete value `e` can take under `constraints` (the first model
  // found; deterministic). nullopt if the constraints are unsatisfiable.
  [[nodiscard]] std::optional<std::uint64_t> getValue(
      const ConstraintSet& constraints, expr::Ref e);

  // A full model of `constraints`; variables of the set that are
  // unconstrained within their sliced component get their enumerated
  // value, variables absent from the set entirely are not bound.
  [[nodiscard]] std::optional<expr::Assignment> getModel(
      const ConstraintSet& constraints);

  [[nodiscard]] const support::StatsRegistry& stats() const { return stats_; }
  support::StatsRegistry& stats() { return stats_; }
  [[nodiscard]] expr::Context& context() const { return ctx_; }
  // The query cache, exposed for the parallel runner's post-run merge
  // barrier (per-worker caches are folded into one so hits accumulate
  // across the fleet).
  [[nodiscard]] QueryCache& cache() { return cache_; }
  [[nodiscard]] const QueryCache& cache() const { return cache_; }

  // Observability (obs/): a trace sink records every non-trivial query
  // with its answer source (cache hit, interval refutation, ...); the
  // profiler charges solver wall-time to Phase::kSolver. Both are
  // nullptr by default (zero cost) and typically installed by
  // Engine::setTraceSink / setProfiler.
  void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }
  void setProfiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

 private:
  // Satisfiability of an explicit conjunction (after slicing).
  EnumResult solveConjunction(std::span<const expr::Ref> conjunction);
  void traceQuery(obs::SolverQueryDetail detail, std::size_t conjuncts,
                  EnumStatus status);

  expr::Context& ctx_;  // non-const: queries intern new (negated) terms
  SolverConfig config_;
  QueryCache cache_;
  support::StatsRegistry stats_;
  obs::TraceSink* trace_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
};

}  // namespace sde::solver
