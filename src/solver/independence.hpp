// Constraint independence slicing (as in KLEE's IndependentSolver):
// a satisfiability query for `query` under a constraint set only depends
// on the constraints transitively sharing variables with the query.
// Slicing both shrinks enumeration domains and raises cache hit rates,
// because unrelated per-node constraints accumulate along distributed
// executions.
#pragma once

#include <span>
#include <vector>

#include "expr/context.hpp"
#include "expr/expr.hpp"

namespace sde::solver {

// Returns the subset of `constraints` (in original order) transitively
// connected to `query` through shared variables. If `query` is nullptr,
// returns the slice connected to the first constraint's component —
// callers wanting whole-set satisfiability should instead use
// `splitComponents` and solve each component.
[[nodiscard]] std::vector<expr::Ref> sliceForQuery(
    const expr::Context& ctx, std::span<const expr::Ref> constraints,
    expr::Ref query);

// Partitions `constraints` into variable-connected components
// (deterministic order: by smallest variable id in the component;
// constraints without variables — impossible after simplification —
// would form their own component).
[[nodiscard]] std::vector<std::vector<expr::Ref>> splitComponents(
    const expr::Context& ctx, std::span<const expr::Ref> constraints);

}  // namespace sde::solver
