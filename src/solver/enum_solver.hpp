// Complete model search by bounded enumeration with partial-evaluation
// pruning. Complete for the domains SDE produces (few small symbolic
// inputs per path: drop flags, header bytes); degrades to kExhausted —
// never to a wrong answer — when domains exceed the budget.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "expr/context.hpp"
#include "expr/eval.hpp"
#include "expr/interval.hpp"

namespace sde::solver {

enum class EnumStatus {
  kSat,        // model found (returned)
  kUnsat,      // full domain covered, no model exists
  kExhausted,  // budget ran out before the search space was covered
};

struct EnumResult {
  EnumStatus status = EnumStatus::kExhausted;
  expr::Assignment model;  // valid iff status == kSat
};

struct EnumConfig {
  // Upper bound on candidate assignments tried across the whole search.
  std::uint64_t maxCandidates = 1u << 20;
  // A single variable whose interval domain exceeds this is sampled at
  // its boundary values first; if those fail the search reports
  // kExhausted rather than iterating the full domain.
  std::uint64_t maxDomainPerVariable = 1u << 16;
};

// Searches for an assignment satisfying the conjunction of
// `constraints`, with variable domains seeded from `env`.
[[nodiscard]] EnumResult enumerateModels(const expr::Context& ctx,
                                         std::span<const expr::Ref> constraints,
                                         const expr::IntervalEnv& env,
                                         const EnumConfig& config = {});

}  // namespace sde::solver
