#include "solver/pipeline.hpp"

#include <chrono>
#include <utility>

#include "solver/shared_cache.hpp"
#include "support/assert.hpp"

namespace sde::solver {

namespace {

using Clock = std::chrono::steady_clock;

void publishShared(LayerQuery& q, const EnumResult& result) {
  // Canonical results only: interval refutations and enumerated models
  // are pure functions of the key (enumeration orders variables by
  // structural hash), so any worker would compute the identical value.
  if (q.shared == nullptr) return;
  q.shared->insert(makeSharedQueryKey(q.key), toSharedResult(result));
}

class ConstantFoldLayer final : public SolverLayer {
 public:
  ConstantFoldLayer() : SolverLayer("constant_fold") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    for (expr::Ref c : q.conjunction) {
      if (c->isFalse()) {
        q.stats.bump("solver.constant_refutations");
        return LayerAnswer{{EnumStatus::kUnsat, {}},
                           obs::SolverLayerDetail::kConstant};
      }
    }
    return std::nullopt;
  }
};

class CanonicalizeLayer final : public SolverLayer {
 public:
  CanonicalizeLayer() : SolverLayer("canonicalize") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    // Commutative operand order is fixed at intern time in
    // expr::Context; what remains is conjunction-level canonicalization:
    // hash-sort, dedup, and dropping trivially-true conjuncts. An empty
    // key means the conjunction is vacuously satisfiable. The
    // zero detail marks this answer as untraced — constant truths are
    // not solver work.
    q.key = makeQueryKey(q.conjunction);
    if (q.key.empty())
      return LayerAnswer{{EnumStatus::kSat, {}}, obs::SolverLayerDetail{}};
    return std::nullopt;
  }
};

class ExactCacheLayer final : public SolverLayer {
 public:
  ExactCacheLayer() : SolverLayer("exact_cache") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    if (!q.config.useCache) return std::nullopt;
    if (const EnumResult* hit = q.cache.lookup(q.key)) {
      q.stats.bump("solver.cache_hits");
      return LayerAnswer{*hit, obs::SolverLayerDetail::kCacheHit};
    }
    return std::nullopt;
  }
};

class SubsumptionLayer final : public SolverLayer {
 public:
  SubsumptionLayer() : SolverLayer("subsumption") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    if (!q.config.useCache) return std::nullopt;
    // Recent-model window first (the pre-pipeline reuse path, in its
    // original position so the monolithic fallback stays equivalent).
    if (auto model = q.cache.reuseModel(q.ctx, q.key)) {
      q.stats.bump("solver.model_reuse_hits");
      EnumResult r{EnumStatus::kSat, std::move(*model)};
      q.cache.insert(q.key, r);
      return LayerAnswer{std::move(r), obs::SolverLayerDetail::kModelReuse};
    }
    if (!q.config.useSubsumption) return std::nullopt;
    // A cached UNSAT key that is a subset of this query proves UNSAT:
    // the query contains a known-unsatisfiable core.
    if (q.cache.subsumesUnsat(q.key)) {
      q.stats.bump("solver.subsumption_hits");
      EnumResult r{EnumStatus::kUnsat, {}};
      q.cache.insert(q.key, r);
      return LayerAnswer{std::move(r), obs::SolverLayerDetail::kSubsumption};
    }
    // Counterexample reuse over the long-lived pool. Status-only
    // queries: a pool model proves SAT but need not equal the canonical
    // enumeration model, so it must neither reach a model-consuming
    // caller nor enter the exact cache (a later model-consuming query
    // on the same key would be answered from there).
    if (!q.needModel) {
      if (auto model = q.cache.reusePoolModel(q.ctx, q.key)) {
        q.stats.bump("solver.subsumption_hits");
        return LayerAnswer{{EnumStatus::kSat, std::move(*model)},
                           obs::SolverLayerDetail::kSubsumption};
      }
    }
    return std::nullopt;
  }
};

class SharedCacheLayer final : public SolverLayer {
 public:
  SharedCacheLayer() : SolverLayer("shared_cache") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    if (q.shared == nullptr) return std::nullopt;
    const auto hit = q.shared->lookup(makeSharedQueryKey(q.key));
    if (!hit) return std::nullopt;
    q.stats.bump("solver.shared_hits");
    EnumResult r = fromSharedResult(q.ctx, *hit);
    // Fold the hit into the local cache exactly as if this worker had
    // computed it: the shared value is canonical, so the local cache
    // (and its model windows) evolve identically to a run without
    // sharing — which is what keeps exploration results byte-identical.
    if (q.config.useCache) q.cache.insert(q.key, r);
    return LayerAnswer{std::move(r), obs::SolverLayerDetail::kSharedCache};
  }
};

class IntervalLayer final : public SolverLayer {
 public:
  IntervalLayer() : SolverLayer("interval") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    if (!q.config.useIntervals) return std::nullopt;
    if (checkIntervals(q.key, q.intervals) == Feasibility::kInfeasible) {
      q.stats.bump("solver.interval_refutations");
      EnumResult r{EnumStatus::kUnsat, {}};
      if (q.config.useCache) q.cache.insert(q.key, r);
      publishShared(q, r);
      return LayerAnswer{std::move(r), obs::SolverLayerDetail::kInterval};
    }
    return std::nullopt;
  }
};

class EnumerateLayer final : public SolverLayer {
 public:
  EnumerateLayer() : SolverLayer("enumerate") {}

  std::optional<LayerAnswer> query(LayerQuery& q) override {
    q.stats.bump("solver.enum_runs");
    EnumResult r =
        enumerateModels(q.ctx, q.key, q.intervals, q.config.enumeration);
    if (r.status == EnumStatus::kExhausted) q.stats.bump("solver.exhausted");
    if (q.config.useCache) q.cache.insert(q.key, r);
    publishShared(q, r);
    return LayerAnswer{std::move(r), obs::SolverLayerDetail::kEnumerated};
  }
};

}  // namespace

SolverLayer::SolverLayer(std::string_view name) : name_(name) {
  const std::string prefix = "solver.layer." + name_ + ".";
  queriesKey_ = prefix + "queries";
  hitsKey_ = prefix + "hits";
  nanosKey_ = prefix + "nanos";
}

SolverPipeline::SolverPipeline(expr::Context& ctx, const SolverConfig& config,
                               QueryCache& cache,
                               support::StatsRegistry& stats)
    : ctx_(ctx), config_(config), cache_(cache), stats_(stats) {
  layers_.push_back(std::make_unique<ConstantFoldLayer>());
  layers_.push_back(std::make_unique<CanonicalizeLayer>());
  layers_.push_back(std::make_unique<ExactCacheLayer>());
  layers_.push_back(std::make_unique<SubsumptionLayer>());
  layers_.push_back(std::make_unique<SharedCacheLayer>());
  layers_.push_back(std::make_unique<IntervalLayer>());
  layers_.push_back(std::make_unique<EnumerateLayer>());
}

void SolverPipeline::setMetrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  for (const auto& layer : layers_) {
    layer->latencyId_ = metrics_->histogram("solver.layer." + layer->name_ +
                                            ".latency_ns");
  }
}

LayerAnswer SolverPipeline::solve(std::span<const expr::Ref> conjunction,
                                  bool needModel) {
  LayerQuery q{.ctx = ctx_,
               .stats = stats_,
               .config = config_,
               .conjunction = conjunction,
               .key = {},
               .intervals = {},
               .cache = cache_,
               .shared = config_.useSharedCache ? shared_ : nullptr,
               .needModel = needModel};
  auto last = Clock::now();
  for (const auto& layer : layers_) {
    ++layer->counters_.queries;
    stats_.bump(layer->queriesKey_);
    auto answer = layer->query(q);
    // One clock read per layer: the delta since the previous read is
    // this layer's time (latency attribution, excluded from run
    // fingerprints like every "solver."-prefixed counter).
    const auto now = Clock::now();
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last)
            .count());
    last = now;
    layer->counters_.nanos += nanos;
    stats_.bump(layer->nanosKey_, nanos);
    if (metrics_ != nullptr) metrics_->observe(layer->latencyId_, nanos);
    if (answer) {
      ++layer->counters_.hits;
      stats_.bump(layer->hitsKey_);
      return std::move(*answer);
    }
  }
  SDE_ASSERT(false, "the enumeration layer answers every query");
  return {};
}

}  // namespace sde::solver
