#include "solver/constraint_set.hpp"

#include <algorithm>
#include <utility>

#include "support/hash.hpp"

namespace sde::solver {

ConstraintSet::AddResult ConstraintSet::add(expr::Ref c) {
  SDE_ASSERT(c->width() == 1, "path constraints must be boolean");
  if (c->isTrue()) return AddResult::kRedundant;
  if (c->isFalse()) return AddResult::kTriviallyFalse;
  if (contains(c)) return AddResult::kRedundant;
  // XOR of mixed per-item hashes: commutative, so the set hash is
  // independent of insertion order.
  setHash_ ^= support::mix64(c->hash());
  constraints_.push_back(std::move(c));
  return AddResult::kAdded;
}

bool ConstraintSet::contains(const expr::Ref& c) const {
  for (const expr::Ref& item : constraints_)
    if (item == c) return true;
  return false;
}

std::vector<expr::Ref> ConstraintSet::toVector() const {
  std::vector<expr::Ref> flat;
  flat.reserve(constraints_.size());
  for (const expr::Ref& c : constraints_) flat.push_back(c);
  return flat;
}

std::vector<expr::Ref> ConstraintSet::variables(
    const expr::Context& ctx) const {
  std::vector<expr::Ref> vars;
  for (const expr::Ref& c : constraints_) ctx.collectVariables(c, vars);
  std::sort(vars.begin(), vars.end(),
            [](const expr::Ref& a, const expr::Ref& b) {
              return a->id() < b->id();
            });
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

void ConstraintSet::restoreSnapshot(Items items) {
  constraints_ = std::move(items);
  setHash_ = 0;
  for (const expr::Ref& c : constraints_)
    setHash_ ^= support::mix64(c->hash());
}

}  // namespace sde::solver
