#include "solver/constraint_set.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace sde::solver {

ConstraintSet::AddResult ConstraintSet::add(expr::Ref c) {
  SDE_ASSERT(c->width() == 1, "path constraints must be boolean");
  if (c->isTrue()) return AddResult::kRedundant;
  if (c->isFalse()) return AddResult::kTriviallyFalse;
  if (contains(c)) return AddResult::kRedundant;
  constraints_.push_back(c);
  // XOR of mixed per-item hashes: commutative, so the set hash is
  // independent of insertion order.
  setHash_ ^= support::mix64(c->hash());
  return AddResult::kAdded;
}

bool ConstraintSet::contains(expr::Ref c) const {
  return std::find(constraints_.begin(), constraints_.end(), c) !=
         constraints_.end();
}

std::vector<expr::Ref> ConstraintSet::variables(
    const expr::Context& ctx) const {
  std::vector<expr::Ref> vars;
  for (expr::Ref c : constraints_) ctx.collectVariables(c, vars);
  std::sort(vars.begin(), vars.end(),
            [](expr::Ref a, expr::Ref b) { return a->id() < b->id(); });
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

}  // namespace sde::solver
