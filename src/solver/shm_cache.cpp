#include "solver/shm_cache.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "support/hash.hpp"

namespace sde::solver {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'S', 'H', 'M', 'Q', 'C'};
// Bumped on any header or slot layout change; attach() rejects every
// other version (no migration, same policy as the snapshot formats).
constexpr std::uint32_t kLayoutVersion = 1;
// Two-phase init: the creator publishes this marker only after the
// header geometry is fully written, so an attacher racing a crashed
// creator sees a not-ready segment, never half-written geometry.
constexpr std::uint64_t kReadyMarker = 0x52454144u;  // "READ"

// Slot lifecycle. Claimed-but-never-published slots are the residue of
// a writer killed mid-insert; everyone probes past them.
constexpr std::uint64_t kSlotEmpty = 0;
constexpr std::uint64_t kSlotClaimed = 1;
constexpr std::uint64_t kSlotPublished = 2;

// Bounded probing: beyond this the table is effectively saturated and
// inserts are dropped (lookups that probe this far without a match
// report a miss, which is always sound).
constexpr std::uint64_t kMaxProbe = 128;

std::uint64_t keyDigest(const SharedQueryKey& key) {
  support::Hasher h;
  for (const std::uint64_t v : key) h.u64(v);
  // Digest 0 is reserved as "impossible" so a zeroed slot never
  // accidentally matches a real key.
  const std::uint64_t digest = h.digest();
  return digest == 0 ? 1 : digest;
}

}  // namespace

// The header is a fixed prelude of the segment; every field is written
// by the creator before the ready marker, except the atomics, which any
// attached process may bump.
struct ShmQueryCache::Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t pad0;
  std::uint64_t capacity;      // number of slots
  std::uint32_t maxConjuncts;  // slot geometry
  std::uint32_t maxBindings;
  std::uint32_t nameBytes;
  std::uint32_t pad1;
  std::atomic<std::uint64_t> ready;
  std::atomic<std::uint64_t> entries;
  std::atomic<std::uint64_t> hits;
  std::atomic<std::uint64_t> misses;
  std::atomic<std::uint64_t> inserts;
  std::atomic<std::uint64_t> dropped;
};

// One open-addressed table slot. The variable-size tail (key hashes,
// then bindings) is laid out after the fixed fields according to the
// header geometry; `state` is the publication gate.
struct ShmQueryCache::Slot {
  std::atomic<std::uint64_t> state;
  std::uint64_t digest;
  std::uint32_t keyLen;
  std::uint32_t numBindings;
  std::uint8_t status;  // EnumStatus
  std::uint8_t pad[7];

  [[nodiscard]] std::uint64_t* keyHashes() {
    return reinterpret_cast<std::uint64_t*>(this + 1);
  }
  [[nodiscard]] const std::uint64_t* keyHashes() const {
    return reinterpret_cast<const std::uint64_t*>(this + 1);
  }
};

namespace {

// One serialized binding in the slot tail: name (NUL-padded), width,
// value.
struct SlotBinding {
  std::uint32_t width;
  std::uint32_t pad;
  std::uint64_t value;
  // name[nameBytes] follows
};

}  // namespace

ShmQueryCache::Header& ShmQueryCache::header() const {
  return *static_cast<Header*>(base_);
}

std::uint64_t ShmQueryCache::slotBytesFor(std::uint32_t maxConjuncts,
                                          std::uint32_t maxBindings,
                                          std::uint32_t nameBytes) {
  const std::uint64_t fixed = sizeof(Slot);
  const std::uint64_t keys = std::uint64_t{maxConjuncts} * sizeof(std::uint64_t);
  // Binding payloads are 8-byte aligned; round the name field up.
  const std::uint64_t nameAligned = (std::uint64_t{nameBytes} + 7) & ~7ull;
  const std::uint64_t bindings =
      std::uint64_t{maxBindings} * (sizeof(SlotBinding) + nameAligned);
  return fixed + keys + bindings;
}

std::uint64_t ShmQueryCache::slotBytes() const {
  const Header& h = header();
  return slotBytesFor(h.maxConjuncts, h.maxBindings, h.nameBytes);
}

ShmQueryCache::Slot* ShmQueryCache::slotAt(std::uint64_t index) const {
  char* table = static_cast<char*>(base_) + sizeof(Header);
  return reinterpret_cast<Slot*>(table + index * slotBytes());
}

ShmQueryCache::ShmQueryCache(std::string name, int fd, void* base,
                             std::size_t bytes)
    : name_(std::move(name)), fd_(fd), base_(base), mappedBytes_(bytes) {}

ShmQueryCache::~ShmQueryCache() {
  if (base_ != nullptr) ::munmap(base_, mappedBytes_);
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<ShmQueryCache> ShmQueryCache::create(
    const std::string& name, const ShmCacheConfig& config) {
  if (config.nameBytes < 2 || config.maxConjuncts == 0 ||
      config.maxBindings == 0)
    throw ShmCacheError("shm cache: degenerate geometry");
  const std::uint64_t slotSize =
      slotBytesFor(config.maxConjuncts, config.maxBindings, config.nameBytes);
  if (config.bytes < sizeof(Header) + slotSize)
    throw ShmCacheError("shm cache: segment too small for a single slot");
  const std::uint64_t capacity = (config.bytes - sizeof(Header)) / slotSize;

  const int fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0)
    throw ShmCacheError("shm_open(" + name +
                        ") failed: " + std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(config.bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw ShmCacheError("ftruncate(" + name +
                        ") failed: " + std::strerror(err));
  }
  void* base = ::mmap(nullptr, config.bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw ShmCacheError("mmap(" + name + ") failed: " + std::strerror(err));
  }

  // ftruncate zero-fills, so every slot already reads kSlotEmpty; only
  // the header needs explicit initialization.
  auto cache = std::unique_ptr<ShmQueryCache>(
      new ShmQueryCache(name, fd, base, config.bytes));
  Header& h = cache->header();
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kLayoutVersion;
  h.capacity = capacity;
  h.maxConjuncts = config.maxConjuncts;
  h.maxBindings = config.maxBindings;
  h.nameBytes = config.nameBytes;
  h.entries.store(0, std::memory_order_relaxed);
  h.hits.store(0, std::memory_order_relaxed);
  h.misses.store(0, std::memory_order_relaxed);
  h.inserts.store(0, std::memory_order_relaxed);
  h.dropped.store(0, std::memory_order_relaxed);
  h.ready.store(kReadyMarker, std::memory_order_release);
  return cache;
}

std::unique_ptr<ShmQueryCache> ShmQueryCache::attach(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0)
    throw ShmCacheError("shm_open(" + name +
                        ") failed: " + std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw ShmCacheError("fstat(" + name + ") failed");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  if (bytes < sizeof(Header)) {
    ::close(fd);
    throw ShmCacheError("shm cache segment " + name +
                        " is truncated (smaller than its header)");
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    throw ShmCacheError("mmap(" + name + ") failed");
  }
  auto cache =
      std::unique_ptr<ShmQueryCache>(new ShmQueryCache(name, fd, base, bytes));

  const Header& h = cache->header();
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw ShmCacheError("segment " + name + " is not an SDE shm query cache");
  if (h.version != kLayoutVersion)
    throw ShmCacheError("shm cache layout version " +
                        std::to_string(h.version) + " (this build expects " +
                        std::to_string(kLayoutVersion) + ")");
  if (h.ready.load(std::memory_order_acquire) != kReadyMarker)
    throw ShmCacheError("segment " + name +
                        " was never fully initialized (creator crashed?)");
  if (h.nameBytes < 2 || h.maxConjuncts == 0 || h.maxBindings == 0 ||
      h.capacity == 0)
    throw ShmCacheError("segment " + name + " has degenerate geometry");
  // The geometry must fit the mapping exactly as created: a segment
  // truncated after creation would otherwise SIGBUS on first probe.
  const std::uint64_t need =
      sizeof(Header) + h.capacity * slotBytesFor(h.maxConjuncts, h.maxBindings,
                                                 h.nameBytes);
  if (need > bytes)
    throw ShmCacheError("segment " + name + " is torn: header advertises " +
                        std::to_string(need) + " bytes but only " +
                        std::to_string(bytes) + " are mapped");
  return cache;
}

void ShmQueryCache::unlinkSegment(const std::string& name) {
  ::shm_unlink(name.c_str());
}

bool ShmQueryCache::segmentExists(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::size_t ShmQueryCache::capacitySlots() const {
  return static_cast<std::size_t>(header().capacity);
}

std::uint64_t ShmQueryCache::entries() const {
  return header().entries.load(std::memory_order_relaxed);
}
std::uint64_t ShmQueryCache::hits() const {
  return header().hits.load(std::memory_order_relaxed);
}
std::uint64_t ShmQueryCache::misses() const {
  return header().misses.load(std::memory_order_relaxed);
}
std::uint64_t ShmQueryCache::inserts() const {
  return header().inserts.load(std::memory_order_relaxed);
}
std::uint64_t ShmQueryCache::dropped() const {
  return header().dropped.load(std::memory_order_relaxed);
}

std::optional<SharedQueryResult> ShmQueryCache::lookup(
    const SharedQueryKey& key) const {
  Header& h = header();  // counters in the segment are logically mutable
  if (key.empty() || key.size() > h.maxConjuncts) {
    h.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::uint64_t digest = keyDigest(key);
  const std::uint64_t probes = std::min<std::uint64_t>(kMaxProbe, h.capacity);
  for (std::uint64_t i = 0; i < probes; ++i) {
    const Slot* slot = slotAt((digest + i) % h.capacity);
    const std::uint64_t state = slot->state.load(std::memory_order_acquire);
    if (state == kSlotEmpty) break;  // claimed slots: keep probing
    if (state != kSlotPublished) continue;
    if (slot->digest != digest || slot->keyLen != key.size()) continue;
    if (!std::equal(key.begin(), key.end(), slot->keyHashes())) continue;

    SharedQueryResult result;
    result.status = static_cast<EnumStatus>(slot->status);
    result.model.reserve(slot->numBindings);
    const std::uint64_t nameAligned = (std::uint64_t{h.nameBytes} + 7) & ~7ull;
    const char* cursor =
        reinterpret_cast<const char*>(slot->keyHashes() + h.maxConjuncts);
    for (std::uint32_t b = 0; b < slot->numBindings; ++b) {
      const auto* payload = reinterpret_cast<const SlotBinding*>(cursor);
      const char* name = cursor + sizeof(SlotBinding);
      SharedBinding binding;
      // The writer NUL-terminates within nameBytes; strnlen guards a
      // (theoretically impossible) unterminated name anyway.
      binding.name.assign(name, ::strnlen(name, h.nameBytes));
      binding.width = payload->width;
      binding.value = payload->value;
      result.model.push_back(std::move(binding));
      cursor += sizeof(SlotBinding) + nameAligned;
    }
    h.hits.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  h.misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ShmQueryCache::insert(const SharedQueryKey& key,
                           SharedQueryResult result) {
  Header& h = header();
  if (key.empty() || key.size() > h.maxConjuncts ||
      result.model.size() > h.maxBindings) {
    h.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (const SharedBinding& binding : result.model) {
    if (binding.name.size() + 1 > h.nameBytes) {
      h.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  const std::uint64_t digest = keyDigest(key);
  const std::uint64_t probes = std::min<std::uint64_t>(kMaxProbe, h.capacity);
  for (std::uint64_t i = 0; i < probes; ++i) {
    Slot* slot = slotAt((digest + i) % h.capacity);
    std::uint64_t state = slot->state.load(std::memory_order_acquire);
    if (state == kSlotPublished) {
      // First writer wins: an equal key already published means drop.
      if (slot->digest == digest && slot->keyLen == key.size() &&
          std::equal(key.begin(), key.end(), slot->keyHashes()))
        return;
      continue;
    }
    if (state == kSlotClaimed) continue;  // stuck or mid-write: probe past
    if (!slot->state.compare_exchange_strong(state, kSlotClaimed,
                                             std::memory_order_acq_rel))
      continue;  // lost the race for this slot; try the next one

    slot->digest = digest;
    slot->keyLen = static_cast<std::uint32_t>(key.size());
    slot->status = static_cast<std::uint8_t>(result.status);
    slot->numBindings = static_cast<std::uint32_t>(result.model.size());
    std::copy(key.begin(), key.end(), slot->keyHashes());
    const std::uint64_t nameAligned = (std::uint64_t{h.nameBytes} + 7) & ~7ull;
    char* cursor = reinterpret_cast<char*>(slot->keyHashes() + h.maxConjuncts);
    for (const SharedBinding& binding : result.model) {
      auto* payload = reinterpret_cast<SlotBinding*>(cursor);
      payload->width = binding.width;
      payload->pad = 0;
      payload->value = binding.value;
      char* name = cursor + sizeof(SlotBinding);
      std::memset(name, 0, nameAligned);
      std::memcpy(name, binding.name.data(), binding.name.size());
      cursor += sizeof(SlotBinding) + nameAligned;
    }
    slot->state.store(kSlotPublished, std::memory_order_release);
    h.entries.fetch_add(1, std::memory_order_relaxed);
    h.inserts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  h.dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<SharedQueryKey, SharedQueryResult>>
ShmQueryCache::sortedEntries() const {
  const Header& h = header();
  std::vector<std::pair<SharedQueryKey, SharedQueryResult>> entries;
  const std::uint64_t nameAligned = (std::uint64_t{h.nameBytes} + 7) & ~7ull;
  for (std::uint64_t i = 0; i < h.capacity; ++i) {
    const Slot* slot = slotAt(i);
    if (slot->state.load(std::memory_order_acquire) != kSlotPublished)
      continue;
    SharedQueryKey key(slot->keyHashes(), slot->keyHashes() + slot->keyLen);
    SharedQueryResult result;
    result.status = static_cast<EnumStatus>(slot->status);
    const char* cursor =
        reinterpret_cast<const char*>(slot->keyHashes() + h.maxConjuncts);
    for (std::uint32_t b = 0; b < slot->numBindings; ++b) {
      const auto* payload = reinterpret_cast<const SlotBinding*>(cursor);
      const char* name = cursor + sizeof(SlotBinding);
      result.model.push_back(SharedBinding{
          std::string(name, ::strnlen(name, h.nameBytes)), payload->width,
          payload->value});
      cursor += sizeof(SlotBinding) + nameAligned;
    }
    entries.emplace_back(std::move(key), std::move(result));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace sde::solver
