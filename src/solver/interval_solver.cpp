#include "solver/interval_solver.hpp"

namespace sde::solver {

Feasibility checkIntervals(std::span<const expr::Ref> constraints,
                           expr::IntervalEnv& env) {
  // Narrow to fixpoint. Each round can only shrink intervals, and each
  // shrink removes at least one value, so a small round cap suffices in
  // practice; the cap only costs precision, never soundness.
  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    const expr::IntervalEnv before = env;
    for (expr::Ref c : constraints)
      if (!expr::refineByConstraint(c, env)) return Feasibility::kInfeasible;
    if (env == before) break;
  }

  for (expr::Ref c : constraints) {
    const expr::Interval ci = expr::intervalOf(c, env);
    if (ci.isPoint() && ci.lo == 0) return Feasibility::kInfeasible;
  }
  return Feasibility::kUnknown;
}

}  // namespace sde::solver
