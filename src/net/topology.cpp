#include "net/topology.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace sde::net {

void Topology::addEdge(NodeId a, NodeId b) {
  SDE_ASSERT(a < numNodes() && b < numNodes() && a != b, "invalid edge");
  if (!hasEdge(a, b)) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

std::span<const NodeId> Topology::neighbors(NodeId node) const {
  SDE_ASSERT(node < numNodes(), "node id out of range");
  return adjacency_[node];
}

bool Topology::hasEdge(NodeId a, NodeId b) const {
  SDE_ASSERT(a < numNodes() && b < numNodes(), "node id out of range");
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::uint32_t Topology::hopDistance(NodeId from, NodeId to) const {
  SDE_ASSERT(from < numNodes() && to < numNodes(), "node id out of range");
  if (from == to) return 0;
  std::vector<std::uint32_t> dist(numNodes(), numNodes());
  dist[from] = 0;
  std::deque<NodeId> queue{from};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (NodeId next : adjacency_[cur]) {
      if (dist[next] != numNodes()) continue;
      dist[next] = dist[cur] + 1;
      if (next == to) return dist[next];
      queue.push_back(next);
    }
  }
  return dist[to];
}

Topology Topology::line(std::uint32_t nodes) {
  SDE_ASSERT(nodes >= 1, "empty topology");
  Topology t(nodes);
  for (std::uint32_t i = 0; i + 1 < nodes; ++i) t.addEdge(i, i + 1);
  return t;
}

Topology Topology::ring(std::uint32_t nodes) {
  SDE_ASSERT(nodes >= 3, "a ring needs at least three nodes");
  Topology t(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) t.addEdge(i, (i + 1) % nodes);
  return t;
}

Topology Topology::star(std::uint32_t leaves) {
  SDE_ASSERT(leaves >= 1, "a star needs at least one leaf");
  Topology t(leaves + 1);
  for (std::uint32_t i = 1; i <= leaves; ++i) t.addEdge(0, i);
  return t;
}

Topology Topology::fullMesh(std::uint32_t nodes) {
  SDE_ASSERT(nodes >= 2, "a mesh needs at least two nodes");
  Topology t(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i)
    for (std::uint32_t j = i + 1; j < nodes; ++j) t.addEdge(i, j);
  return t;
}

Topology Topology::grid(std::uint32_t width, std::uint32_t height) {
  SDE_ASSERT(width >= 1 && height >= 1, "empty grid");
  Topology t(width * height);
  t.gridWidth_ = width;
  for (std::uint32_t r = 0; r < height; ++r) {
    for (std::uint32_t c = 0; c < width; ++c) {
      const NodeId id = r * width + c;
      if (c + 1 < width) t.addEdge(id, id + 1);
      if (r + 1 < height) t.addEdge(id, id + width);
    }
  }
  return t;
}

}  // namespace sde::net
