// Network topologies. The paper evaluates 5x5 / 7x7 / 10x10 grids where
// each node reaches its four-neighbourhood (Figure 9); the discussion
// (§IV-C) uses full meshes as the adversarial case. Factories for those
// plus the line/star/ring shapes used by tests and examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace sde::net {

class Topology {
 public:
  // --- Factories ----------------------------------------------------------
  static Topology line(std::uint32_t nodes);
  static Topology ring(std::uint32_t nodes);
  static Topology star(std::uint32_t leaves);  // node 0 is the hub
  static Topology fullMesh(std::uint32_t nodes);
  // Four-neighbourhood grid, row-major ids: node (r, c) has id r*w + c.
  static Topology grid(std::uint32_t width, std::uint32_t height);

  [[nodiscard]] std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const;
  [[nodiscard]] bool hasEdge(NodeId a, NodeId b) const;

  // BFS hop distance; numNodes() if unreachable.
  [[nodiscard]] std::uint32_t hopDistance(NodeId from, NodeId to) const;

  // Grid helpers (only meaningful for grid()-built topologies).
  [[nodiscard]] std::uint32_t gridWidth() const { return gridWidth_; }

 private:
  explicit Topology(std::uint32_t nodes) : adjacency_(nodes) {}
  void addEdge(NodeId a, NodeId b);

  std::vector<std::vector<NodeId>> adjacency_;
  std::uint32_t gridWidth_ = 0;
};

}  // namespace sde::net
