// Static routing. The paper's scenario forwards data "towards the
// destination via a static route" (§IV-A); this table precomputes
// next hops along BFS shortest paths, with deterministic tie-breaking
// (lowest neighbour id first), so every run sees the same data path.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace sde::net {

class RoutingTable {
 public:
  // Routes from every node toward the single destination `sink`.
  static RoutingTable towards(const Topology& topology, NodeId sink);

  // Next hop from `node` toward the configured sink; `node` itself if it
  // is the sink; numNodes() sentinel when unreachable.
  [[nodiscard]] NodeId nextHop(NodeId node) const;

  [[nodiscard]] NodeId sink() const { return sink_; }

  // The node sequence from `from` to the sink (inclusive of both ends).
  [[nodiscard]] std::vector<NodeId> path(NodeId from) const;

  // All nodes that lie on the path from `from` to the sink, plus their
  // one-hop neighbours — the set the paper configures for symbolic drops
  // ("nodes on the data path towards the destination and their
  // neighbors", §IV-A).
  [[nodiscard]] std::vector<NodeId> pathAndNeighbors(
      const Topology& topology, NodeId from) const;

 private:
  NodeId sink_ = 0;
  std::vector<NodeId> nextHop_;
};

}  // namespace sde::net
