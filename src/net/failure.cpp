#include "net/failure.hpp"

namespace sde::net {

namespace {

// How many failures with `label` this state has already explored. The
// interpreter names symbolic inputs per (node, label) with a per-state
// counter, so the counter doubles as the per-node failure budget.
std::uint32_t injectedSoFar(const vm::ExecutionState& state,
                            const char* label) {
  const auto it = state.symbolicCounters.find(label);
  return it == state.symbolicCounters.end() ? 0 : it->second;
}

}  // namespace

SymbolicDropModel::SymbolicDropModel(std::vector<NodeId> nodes,
                                     std::uint32_t maxPerNode)
    : nodes_(nodes.begin(), nodes.end()), maxPerNode_(maxPerNode) {}

FailureDecision SymbolicDropModel::onDelivery(const vm::ExecutionState& state,
                                              const Packet& packet) {
  (void)packet;
  if (!nodes_.contains(state.node())) return {};
  if (injectedSoFar(state, kLabel) >= maxPerNode_) return {};
  return {FailureKind::kDrop, kLabel};
}

SymbolicDuplicateModel::SymbolicDuplicateModel(std::vector<NodeId> nodes,
                                               std::uint32_t maxPerNode)
    : nodes_(nodes.begin(), nodes.end()), maxPerNode_(maxPerNode) {}

FailureDecision SymbolicDuplicateModel::onDelivery(
    const vm::ExecutionState& state, const Packet& packet) {
  (void)packet;
  if (!nodes_.contains(state.node())) return {};
  if (injectedSoFar(state, kLabel) >= maxPerNode_) return {};
  return {FailureKind::kDuplicate, kLabel};
}

SymbolicRebootModel::SymbolicRebootModel(std::vector<NodeId> nodes,
                                         std::uint32_t maxPerNode)
    : nodes_(nodes.begin(), nodes.end()), maxPerNode_(maxPerNode) {}

FailureDecision SymbolicRebootModel::onDelivery(
    const vm::ExecutionState& state, const Packet& packet) {
  (void)packet;
  if (!nodes_.contains(state.node())) return {};
  if (injectedSoFar(state, kLabel) >= maxPerNode_) return {};
  return {FailureKind::kReboot, kLabel};
}

FailureDecision CompositeFailureModel::onDelivery(
    const vm::ExecutionState& state, const Packet& packet) {
  for (const auto& model : models_) {
    FailureDecision decision = model->onDelivery(state, packet);
    if (decision.kind != FailureKind::kNone) return decision;
  }
  return {};
}

}  // namespace sde::net
