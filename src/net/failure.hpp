// Network failure models.
//
// Matching the paper's layering (§II-B footnote 2), the state-mapping
// layer assumes ideal network conditions: a transmitted packet reaches
// its destination states. Failures are injected *above* that layer, at
// event dispatch: before a receive handler runs, the failure model may
// request a symbolic fork of the receiving state — one branch processes
// the packet, the other experiences the failure (drop, duplicate
// delivery, or node reboot). That is exactly KleeNet's "network failure
// model forks the receiving node's state" (§IV-A).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"

namespace sde::net {

enum class FailureKind : std::uint8_t {
  kNone,       // deliver normally
  kDrop,       // fork: one state processes the packet, one drops it
  kDuplicate,  // fork: one state processes once, one processes twice
  kReboot,     // fork: one state processes, one reboots instead
};

struct FailureDecision {
  FailureKind kind = FailureKind::kNone;
  // Label for the symbolic decision variable; the engine scopes it per
  // node and occurrence ("n<node>.<label>.<k>").
  std::string label;
};

class FailureModel {
 public:
  virtual ~FailureModel() = default;

  // Consulted once per (state, packet) delivery, before the handler
  // runs. Implementations typically bound the number of injected
  // failures per node by inspecting the state's symbolic counters.
  [[nodiscard]] virtual FailureDecision onDelivery(
      const vm::ExecutionState& state, const Packet& packet) = 0;
};

// Ideal network: never injects failures.
class NoFailures final : public FailureModel {
 public:
  FailureDecision onDelivery(const vm::ExecutionState&,
                             const Packet&) override {
    return {};
  }
};

// The paper's evaluation model (§IV-A): selected nodes symbolically drop
// up to `maxPerNode` received packets ("symbolically drop one packet").
class SymbolicDropModel final : public FailureModel {
 public:
  SymbolicDropModel(std::vector<NodeId> nodes, std::uint32_t maxPerNode = 1);
  FailureDecision onDelivery(const vm::ExecutionState& state,
                             const Packet& packet) override;

  static constexpr const char* kLabel = "netdrop";

 private:
  std::unordered_set<NodeId> nodes_;
  std::uint32_t maxPerNode_;
};

// Symbolic packet duplication on selected nodes (§IV-A mentions packet
// duplicates among the further failures).
class SymbolicDuplicateModel final : public FailureModel {
 public:
  SymbolicDuplicateModel(std::vector<NodeId> nodes,
                         std::uint32_t maxPerNode = 1);
  FailureDecision onDelivery(const vm::ExecutionState& state,
                             const Packet& packet) override;

  static constexpr const char* kLabel = "netdup";

 private:
  std::unordered_set<NodeId> nodes_;
  std::uint32_t maxPerNode_;
};

// Symbolic node reboot on packet reception for selected nodes.
class SymbolicRebootModel final : public FailureModel {
 public:
  SymbolicRebootModel(std::vector<NodeId> nodes, std::uint32_t maxPerNode = 1);
  FailureDecision onDelivery(const vm::ExecutionState& state,
                             const Packet& packet) override;

  static constexpr const char* kLabel = "netreboot";

 private:
  std::unordered_set<NodeId> nodes_;
  std::uint32_t maxPerNode_;
};

// Applies the first sub-model that requests a failure.
class CompositeFailureModel final : public FailureModel {
 public:
  void add(std::unique_ptr<FailureModel> model) {
    models_.push_back(std::move(model));
  }
  FailureDecision onDelivery(const vm::ExecutionState& state,
                             const Packet& packet) override;

 private:
  std::vector<std::unique_ptr<FailureModel>> models_;
};

}  // namespace sde::net
