#include "net/packet.hpp"

#include "support/hash.hpp"

namespace sde::net {

std::uint64_t Packet::payloadHash() const {
  support::Hasher h;
  for (expr::Ref cell : payload) h.u64(cell->hash());
  return h.digest();
}

}  // namespace sde::net
