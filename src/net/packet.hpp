// Network packets. A packet is a unicast transmission of symbolic cells
// from one node to another (the paper models broadcast/multicast as a
// series of unicasts, §II-B footnote 1). Packet ids are unique per run
// and give the communication-history machinery distinguishable packets
// (§II-B: "all packets ... are assumed to be unique and distinguishable").
#pragma once

#include <cstdint>
#include <vector>

#include "expr/expr.hpp"
#include "vm/state.hpp"

namespace sde::net {

using vm::NodeId;

// Destination sentinel: the engine expands a send to this address into a
// series of unicasts to the sender's radio neighbourhood (the paper
// simulates broadcast exactly this way, §II-B footnote 1).
inline constexpr NodeId kBroadcastAddress = 0xffffffffu;

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t sendTime = 0;
  std::vector<expr::Ref> payload;

  // Structural hash of the payload cells (used in communication-history
  // records; packet ids stay out of state fingerprints).
  [[nodiscard]] std::uint64_t payloadHash() const;
};

}  // namespace sde::net
