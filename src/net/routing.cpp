#include "net/routing.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace sde::net {

RoutingTable RoutingTable::towards(const Topology& topology, NodeId sink) {
  SDE_ASSERT(sink < topology.numNodes(), "sink out of range");
  RoutingTable table;
  table.sink_ = sink;
  const std::uint32_t n = topology.numNodes();
  table.nextHop_.assign(n, n);  // sentinel: unreachable
  table.nextHop_[sink] = sink;

  // BFS outward from the sink; each discovered node's next hop is its
  // BFS parent. Neighbour lists are built in ascending id order by the
  // topology factories, so tie-breaking is deterministic.
  std::deque<NodeId> queue{sink};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (NodeId next : topology.neighbors(cur)) {
      if (table.nextHop_[next] != n) continue;
      table.nextHop_[next] = cur;
      queue.push_back(next);
    }
  }
  return table;
}

NodeId RoutingTable::nextHop(NodeId node) const {
  SDE_ASSERT(node < nextHop_.size(), "node out of range");
  return nextHop_[node];
}

std::vector<NodeId> RoutingTable::path(NodeId from) const {
  std::vector<NodeId> result;
  NodeId cur = from;
  const auto n = static_cast<NodeId>(nextHop_.size());
  while (true) {
    result.push_back(cur);
    if (cur == sink_) break;
    const NodeId next = nextHop_[cur];
    SDE_ASSERT(next != n, "path() from an unreachable node");
    SDE_ASSERT(result.size() <= nextHop_.size(), "routing loop");
    cur = next;
  }
  return result;
}

std::vector<NodeId> RoutingTable::pathAndNeighbors(const Topology& topology,
                                                   NodeId from) const {
  std::vector<NodeId> result = path(from);
  const std::size_t pathLen = result.size();
  for (std::size_t i = 0; i < pathLen; ++i)
    for (NodeId neighbor : topology.neighbors(result[i]))
      result.push_back(neighbor);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace sde::net
