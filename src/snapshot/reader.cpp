#include "snapshot/reader.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace sde::snapshot {

void Reader::raw(void* data, std::size_t n) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n)
    throw SnapshotError("unexpected end of snapshot stream (wanted " +
                        std::to_string(n) + " more bytes)");
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  raw(&v, 1);
  return v;
}

std::uint32_t Reader::u32() {
  std::array<std::uint8_t, 4> bytes{};
  raw(bytes.data(), bytes.size());
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  std::array<std::uint8_t, 8> bytes{};
  raw(bytes.data(), bytes.size());
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str(std::uint64_t maxLength) {
  const std::uint64_t length = u64();
  if (length > maxLength)
    throw SnapshotError("snapshot string length " + std::to_string(length) +
                        " exceeds the sanity bound " +
                        std::to_string(maxLength) + " (corrupt stream?)");
  std::string s(static_cast<std::size_t>(length), '\0');
  raw(s.data(), s.size());
  return s;
}

void Reader::expectMagic(std::string_view tag, std::string_view what) {
  std::array<char, kMagicSize> found{};
  raw(found.data(), found.size());
  std::array<char, kMagicSize> expected{};
  std::memcpy(expected.data(), tag.data(), tag.size());
  if (found != expected)
    throw SnapshotError(std::string(what) + " (bad framing tag, expected \"" +
                        std::string(tag) + "\")");
}

std::string Reader::peekTag() {
  std::array<char, kMagicSize> found{};
  raw(found.data(), found.size());
  std::size_t n = kMagicSize;
  while (n > 0 && found[n - 1] == '\0') --n;
  return std::string(found.data(), n);
}

}  // namespace sde::snapshot
