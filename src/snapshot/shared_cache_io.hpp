// Serialization of the cross-worker SharedQueryCache — the
// shared_cache.bin sidecar a durable parallel run keeps next to its
// per-job checkpoints (checkpoint format v4). Unlike per-engine
// checkpoints, the shared cache is already context-independent
// (structural-hash keys, name/width/value model bindings), so the
// sidecar needs no expression table and can be re-read into any run of
// the same scenario: a resumed run starts with the warm cache the
// crashed run had built.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "solver/shared_cache.hpp"

namespace sde::snapshot {

inline constexpr std::string_view kSharedCacheMagic = "SDESHC";

// The sidecar's payload, store-agnostic: any SharedQueryStore that can
// enumerate its entries sorted by key serializes through these (the
// in-process SharedQueryCache and the fleet's ShmQueryCache both do).
using SharedCacheEntries =
    std::vector<std::pair<solver::SharedQueryKey, solver::SharedQueryResult>>;

// Writes `entries` (expected key-sorted for deterministic bytes).
void writeSharedCacheEntries(std::ostream& os,
                             const SharedCacheEntries& entries);

// Parses a sidecar stream. Throws SnapshotError on framing or version
// mismatch.
[[nodiscard]] SharedCacheEntries readSharedCacheEntries(std::istream& is);

// Appends every entry of `cache` to the stream, sorted by key for
// deterministic bytes. Thread-safe against concurrent inserts (each
// shard is locked while copied), but the result is only a point-in-time
// snapshot of a quiescent cache.
void writeSharedCache(std::ostream& os, const solver::SharedQueryCache& cache);

// Replaces the contents of `cache` with the stream's entries. Throws
// SnapshotError on framing or version mismatch.
void readSharedCache(std::istream& is, solver::SharedQueryCache& cache);

// The sidecar's location inside a checkpoint directory.
[[nodiscard]] std::string sharedCachePath(const std::string& checkpointDir);

}  // namespace sde::snapshot
