// Engine checkpoint format (the snapshot subsystem's core).
//
// A checkpoint is the *semantically lossless* serialization of one
// Engine mid-run: the expression DAG as its interning log (so
// hash-consing and node ids reproduce exactly), memory payloads as a
// pointer-identity blob table (so copy-on-write sharing classes — and
// therefore the simulated-memory meter — reproduce exactly), every
// execution state, the path constraints, the solver's query cache and
// stats, the scheduler heap including stale entries, and the mapper's
// grouping structure. A run resumed from any checkpoint produces the
// byte-identical merged fingerprint digest of the uninterrupted run.
//
// Versioning policy: kCheckpointVersion is bumped on ANY layout change;
// readers reject other versions outright (no migration — checkpoints
// are working files of one code revision, not archives). The one
// deliberate exception to "serialize everything" is the
// engine.peak_memory_bytes counter, which the engine records only at
// the end of run(): a suspended run would latch an intermediate
// footprint the uninterrupted run never observes, so the counter is
// dropped and the resumed run recomputes it at its own end — matching
// the uninterrupted run (see DESIGN.md §12).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "expr/expr.hpp"

namespace sde::expr {
class Context;
}

namespace sde::snapshot {

class Writer;
class Reader;

inline constexpr std::string_view kCheckpointMagic = "SDECKPT";
inline constexpr std::string_view kCheckpointTrailer = "SDEEND";
// v2: appended the trace-sequence scalar (obs/ trace continuity across
// suspend/resume) to the engine-scalars section.
// v3: state histories (constraints, comm log, decisions, symbolics) are
// persistent chunked sequences and the pending-event queue is CoW;
// their shared blocks serialize through pointer-identity chunk tables
// (like the memory blob table) so structural sharing — and the
// all-component simulated-memory accounting — survives restore.
// v4: the query-cache section gains the subsumption layer's model pool
// (after the recent-model deque), and a parallel run's warm
// SharedQueryCache persists as a shared_cache.bin sidecar in the
// checkpoint directory (see writeSharedCache/readSharedCache).
// v5: state merging and loop summarization. Each state carries its
// recursive MergeGuard side tables (after executedInstructions), the
// engine scalars gain the merge-guard allocator, the loop-summary
// detector table serializes after the scheduler heap, and the SDS
// virtual pool may contain tombstoned entries (sentinel ids).
inline constexpr std::uint32_t kCheckpointVersion = 5;

// --- Expression DAG (exposed for the round-trip fuzz test) -------------------
// Serializes the whole interning log of `ctx` in creation order; a Ref
// anywhere else in the checkpoint is a u32 index into this log.
void writeExprTable(Writer& out, const expr::Context& ctx);
// Replays the log into `ctx`, which must be freshly constructed (only
// the pre-interned boolean constants present). Throws SnapshotError on
// forward references or index drift.
void readExprTable(Reader& in, expr::Context& ctx);

// Nullable Ref as a u32 node id (null = sentinel).
void writeRef(Writer& out, expr::Ref ref);
[[nodiscard]] expr::Ref readRef(Reader& in, const expr::Context& ctx);

// --- Header sniffing (CLI inspect / validate) --------------------------------
// Reads only the fixed-size prefix of a checkpoint stream: framing tag,
// version (rejected unless kCheckpointVersion) and the run summary.
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint32_t numNodes = 0;   // network size
  std::string mapper;           // mapping algorithm name
  bool booted = false;
  std::uint64_t numStates = 0;
  std::uint64_t virtualNow = 0;
  std::uint64_t eventsProcessed = 0;
};
[[nodiscard]] CheckpointInfo inspectCheckpointHeader(std::istream& in);

}  // namespace sde::snapshot
