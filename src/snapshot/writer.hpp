// Binary snapshot writer: little-endian fixed-width primitives over a
// std::ostream. The format is deliberately simple — no schema, no
// varints, no compression — because checkpoints are consumed by the
// matching Reader of the same kCheckpointVersion only; the version
// header (see checkpoint.hpp / manifest.hpp) is the compatibility
// contract, not the wire encoding.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace sde::snapshot {

// Framing tags are exactly 8 bytes so readers can reject foreign files
// before trusting any length field.
inline constexpr std::size_t kMagicSize = 8;

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void b(bool v) { u8(v ? 1 : 0); }
  // Exact bit pattern; NaNs and signed zeros round-trip.
  void f64(double v);
  // Length-prefixed (u64) byte string.
  void str(std::string_view s);
  // Fixed 8-byte framing tag (shorter tags are NUL-padded).
  void magic(std::string_view tag);

  void raw(const void* data, std::size_t n);

  // Stream health; a full disk surfaces here, not as a torn file the
  // reader must diagnose.
  [[nodiscard]] bool ok() const { return os_.good(); }

 private:
  std::ostream& os_;
};

}  // namespace sde::snapshot
