#include "snapshot/checkpoint.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "expr/context.hpp"
#include "support/pvector.hpp"
#include "sde/engine.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

// This translation unit implements Engine::checkpoint / Engine::restore
// (member functions, for access to the run's private state) plus the
// reusable pieces declared in checkpoint.hpp. Section order in the file
// format mirrors restore-time data dependencies: expressions before
// anything holding a Ref, memory blobs before states, states before the
// scheduler and the mapper (both reference states by id).

namespace sde::snapshot {

namespace {

constexpr std::uint32_t kNullRef = 0xFFFFFFFFu;

void writeStats(Writer& out, const support::StatsRegistry& stats,
                std::string_view skip = {}) {
  std::uint64_t count = 0;
  for (const auto& [name, value] : stats.all())
    if (skip.empty() || name != skip) ++count;
  out.u64(count);
  for (const auto& [name, value] : stats.all()) {
    if (!skip.empty() && name == skip) continue;
    out.str(name);
    out.u64(value);
  }
}

void readStats(Reader& in, support::StatsRegistry& stats) {
  stats.clear();
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = in.str();
    stats.set(name, in.u64());
  }
}

// Assignments are unordered maps; serialize entries sorted by variable
// id so identical runs write identical bytes.
void writeAssignment(Writer& out, const expr::Assignment& model) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> entries;
  entries.reserve(model.size());
  for (const auto& [var, value] : model.entries())
    entries.emplace_back(var->id(), value);
  std::sort(entries.begin(), entries.end());
  out.u64(entries.size());
  for (const auto& [id, value] : entries) {
    out.u32(id);
    out.u64(value);
  }
}

expr::Assignment readAssignment(Reader& in, const expr::Context& ctx) {
  expr::Assignment model;
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t id = in.u32();
    const std::uint64_t value = in.u64();
    if (id >= ctx.numNodes())
      throw SnapshotError("model references an unknown expression node");
    const expr::Ref var = ctx.nodeAt(id);
    if (!var->isVariable())
      throw SnapshotError("model binds a non-variable expression node");
    model.set(var, value);
  }
  return model;
}

}  // namespace

void writeRef(Writer& out, expr::Ref ref) {
  out.u32(ref == nullptr ? kNullRef : ref->id());
}

expr::Ref readRef(Reader& in, const expr::Context& ctx) {
  const std::uint32_t id = in.u32();
  if (id == kNullRef) return nullptr;
  if (id >= ctx.numNodes())
    throw SnapshotError("expression reference " + std::to_string(id) +
                        " is out of range (table holds " +
                        std::to_string(ctx.numNodes()) + " nodes)");
  return ctx.nodeAt(id);
}

void writeExprTable(Writer& out, const expr::Context& ctx) {
  out.u64(ctx.numNodes());
  for (std::size_t i = 0; i < ctx.numNodes(); ++i) {
    const expr::Ref node = ctx.nodeAt(i);
    out.u8(static_cast<std::uint8_t>(node->kind()));
    out.u8(static_cast<std::uint8_t>(node->width()));
    switch (node->kind()) {
      case expr::Kind::kConstant:
        out.u64(node->value());
        break;
      case expr::Kind::kVariable:
        // By name, not by name-table index: replaying the log in order
        // reassigns identical indices, and variables hash by name.
        out.str(node->name());
        break;
      default:
        out.u64(node->kind() == expr::Kind::kExtract ? node->extractOffset()
                                                     : 0);
        out.u8(static_cast<std::uint8_t>(node->numOperands()));
        for (const expr::Ref op : node->operands()) out.u32(op->id());
        break;
    }
  }
}

void readExprTable(Reader& in, expr::Context& ctx) {
  // A fresh context holds exactly the pre-interned false/true constants,
  // which every log also starts with (they re-intern onto themselves).
  SDE_ASSERT(ctx.numNodes() == 2,
             "readExprTable needs a freshly constructed context");
  const std::uint64_t count = in.u64();
  if (count < 2)
    throw SnapshotError("expression table too short (corrupt checkpoint)");
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto kind = static_cast<expr::Kind>(in.u8());
    if (kind > expr::Kind::kExtract)
      throw SnapshotError("unknown expression kind in checkpoint");
    const unsigned width = in.u8();
    if (width < 1 || width > 64)
      throw SnapshotError("expression width out of range in checkpoint");

    expr::Ref node = nullptr;
    if (kind == expr::Kind::kConstant) {
      node = ctx.restoreNode(kind, width, in.u64(), {}, {});
    } else if (kind == expr::Kind::kVariable) {
      const std::string name = in.str();
      node = ctx.restoreNode(kind, width, 0, name, {});
    } else {
      const std::uint64_t aux = in.u64();
      const unsigned numOps = in.u8();
      if (numOps < 1 || numOps > 3)
        throw SnapshotError("expression operand count out of range");
      std::array<expr::Ref, 3> ops{};
      for (unsigned op = 0; op < numOps; ++op) {
        const std::uint32_t opId = in.u32();
        if (opId >= i)
          throw SnapshotError(
              "expression table has a forward operand reference");
        ops[op] = ctx.nodeAt(opId);
      }
      node = ctx.restoreNode(kind, width, aux, {}, {ops.data(), numOps});
    }
    if (node->id() != i)
      throw SnapshotError(
          "expression table replay drifted (node " + std::to_string(i) +
          " re-interned as " + std::to_string(node->id()) + ")");
  }
}

CheckpointInfo inspectCheckpointHeader(std::istream& is) {
  Reader in(is);
  in.expectMagic(kCheckpointMagic, "not an SDE checkpoint file");
  CheckpointInfo info;
  info.version = in.u32();
  if (info.version != kCheckpointVersion)
    throw SnapshotError("unsupported checkpoint version " +
                        std::to_string(info.version) + " (this build reads " +
                        std::to_string(kCheckpointVersion) + ")");
  info.numNodes = in.u32();
  info.mapper = in.str();
  info.booted = in.b();
  info.numStates = in.u64();
  info.virtualNow = in.u64();
  info.eventsProcessed = in.u64();
  return info;
}

}  // namespace sde::snapshot

namespace sde {

namespace {

using snapshot::Reader;
using snapshot::readRef;
using snapshot::SnapshotError;
using snapshot::Writer;
using snapshot::writeRef;

// The stats counter excluded from checkpoints (see checkpoint.hpp).
constexpr std::string_view kPeakMemoryCounter = "engine.peak_memory_bytes";

// v3: shared-sequence chunk tables. Sealed PVector chunks and CoW event
// queue payloads serialize exactly like memory blobs — one table entry
// per distinct allocation, registered in first-encounter order (states
// in creation order, sequences in fixed member order), referenced by
// index from the states. Restoring through the table reproduces the
// structural-sharing classes, so forkCopyCost and simulatedMemoryBytes
// of a resumed run match the uninterrupted run byte-for-byte.
constexpr std::uint64_t kNullQueue = 0xFFFFFFFFFFFFFFFFull;

template <typename T>
struct ChunkTable {
  std::unordered_map<const void*, std::uint64_t> indexOf;
  std::vector<const std::vector<T>*> chunks;

  void registerSequence(const support::PVector<T>& seq) {
    if (seq.spine() == nullptr) return;
    for (const auto& chunk : *seq.spine())
      if (indexOf.try_emplace(chunk.get(), chunks.size()).second)
        chunks.push_back(chunk.get());
  }
};

struct QueueTable {
  std::unordered_map<const void*, std::uint64_t> indexOf;
  std::vector<const std::vector<vm::PendingEvent>*> queues;

  void registerQueue(const vm::EventQueue& queue) {
    const auto& payload = queue.events().raw();
    if (payload == nullptr) return;
    if (indexOf.try_emplace(payload.get(), queues.size()).second)
      queues.push_back(payload.get());
  }
};

struct SharedTables {
  ChunkTable<expr::Ref> refs;            // constraints + symbolics
  ChunkTable<vm::CommRecord> comm;
  ChunkTable<ExecutionState::DecisionRecord> decisions;
  QueueTable queues;

  void registerState(const ExecutionState& state) {
    refs.registerSequence(state.constraints.items());
    comm.registerSequence(state.commLog.records());
    decisions.registerSequence(state.decisions);
    refs.registerSequence(state.symbolics);
    queues.registerQueue(state.pendingEvents);
  }
};

void writeCommRecord(Writer& out, const vm::CommRecord& record) {
  out.b(record.sent);
  out.u32(record.peer);
  out.u64(record.time);
  out.u64(record.payloadHash);
  out.u64(record.packetId);
}

vm::CommRecord readCommRecord(Reader& in) {
  vm::CommRecord record;
  record.sent = in.b();
  record.peer = in.u32();
  record.time = in.u64();
  record.payloadHash = in.u64();
  record.packetId = in.u64();
  return record;
}

void writeDecisionRecord(Writer& out,
                         const ExecutionState::DecisionRecord& decision) {
  writeRef(out, decision.var);
  out.b(decision.failed);
}

ExecutionState::DecisionRecord readDecisionRecord(Reader& in,
                                                  const expr::Context& ctx) {
  ExecutionState::DecisionRecord decision;
  decision.var = readRef(in, ctx);
  decision.failed = in.b();
  return decision;
}

// v5: a state's merge side table, recursive (the arms' own sub-tables
// serialize inline). Depth is bounded by the merge nesting the run
// actually performed.
void writeMergeGuard(Writer& out, const vm::MergeGuard& guard) {
  writeRef(out, guard.guard);
  writeRef(out, guard.conjunct);
  const auto writeRefs = [&out](const std::vector<expr::Ref>& refs) {
    out.u64(refs.size());
    for (const expr::Ref& ref : refs) writeRef(out, ref);
  };
  writeRefs(guard.ifTrue);
  writeRefs(guard.ifFalse);
  const auto writeDecisions =
      [&out](const std::vector<vm::DecisionRecord>& decisions) {
        out.u64(decisions.size());
        for (const vm::DecisionRecord& d : decisions)
          writeDecisionRecord(out, d);
      };
  writeDecisions(guard.decTrue);
  writeDecisions(guard.decFalse);
  out.u64(guard.decSplit);
  const auto writeSub = [&out](const std::vector<vm::MergeGuard>& sub) {
    out.u64(sub.size());
    for (const vm::MergeGuard& g : sub) writeMergeGuard(out, g);
  };
  writeSub(guard.subTrue);
  writeSub(guard.subFalse);
  const auto writeObjs = [&out](const std::vector<std::uint64_t>& objs) {
    out.u64(objs.size());
    for (const std::uint64_t id : objs) out.u64(id);
  };
  writeObjs(guard.objsTrueOnly);
  writeObjs(guard.objsFalseOnly);
}

vm::MergeGuard readMergeGuard(Reader& in, const expr::Context& ctx) {
  vm::MergeGuard guard;
  guard.guard = readRef(in, ctx);
  guard.conjunct = readRef(in, ctx);
  const auto readRefs = [&in, &ctx](std::vector<expr::Ref>& refs) {
    const std::uint64_t count = in.u64();
    refs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) refs.push_back(readRef(in, ctx));
  };
  readRefs(guard.ifTrue);
  readRefs(guard.ifFalse);
  const auto readDecisions =
      [&in, &ctx](std::vector<vm::DecisionRecord>& decisions) {
        const std::uint64_t count = in.u64();
        decisions.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i)
          decisions.push_back(readDecisionRecord(in, ctx));
      };
  readDecisions(guard.decTrue);
  readDecisions(guard.decFalse);
  guard.decSplit = in.u64();
  const auto readSub = [&in, &ctx](std::vector<vm::MergeGuard>& sub) {
    const std::uint64_t count = in.u64();
    sub.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
      sub.push_back(readMergeGuard(in, ctx));
  };
  readSub(guard.subTrue);
  readSub(guard.subFalse);
  const auto readObjs = [&in](std::vector<std::uint64_t>& objs) {
    const std::uint64_t count = in.u64();
    objs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) objs.push_back(in.u64());
  };
  readObjs(guard.objsTrueOnly);
  readObjs(guard.objsFalseOnly);
  return guard;
}

void writePendingEvent(Writer& out, const vm::PendingEvent& event) {
  out.u64(event.time);
  out.u8(static_cast<std::uint8_t>(event.kind));
  out.u64(event.a);
  out.u64(event.b);
  out.u64(event.payload.size());
  for (const expr::Ref& cell : event.payload) writeRef(out, cell);
  out.u64(event.seq);
}

vm::PendingEvent readPendingEvent(Reader& in, const expr::Context& ctx) {
  vm::PendingEvent event;
  event.time = in.u64();
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(vm::EventKind::kRecv))
    throw SnapshotError("unknown event kind in checkpoint");
  event.kind = static_cast<vm::EventKind>(kind);
  event.a = in.u64();
  event.b = in.u64();
  const std::uint64_t cells = in.u64();
  event.payload.reserve(cells);
  for (std::uint64_t c = 0; c < cells; ++c)
    event.payload.push_back(readRef(in, ctx));
  event.seq = in.u64();
  return event;
}

template <typename T, typename WriteElem>
void writeChunkTable(Writer& out, const ChunkTable<T>& table,
                     WriteElem writeElem) {
  out.u64(table.chunks.size());
  for (const std::vector<T>* chunk : table.chunks) {
    out.u64(chunk->size());
    for (const T& item : *chunk) writeElem(item);
  }
}

template <typename T, typename ReadElem>
std::vector<std::shared_ptr<const std::vector<T>>> readChunkTable(
    Reader& in, ReadElem readElem) {
  const std::uint64_t count = in.u64();
  std::vector<std::shared_ptr<const std::vector<T>>> chunks;
  chunks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t size = in.u64();
    if (size != support::PVector<T>::chunkCapacity())
      throw SnapshotError("sequence chunk has the wrong size "
                          "(corrupt checkpoint)");
    auto chunk = std::make_shared<std::vector<T>>();
    chunk->reserve(size);
    for (std::uint64_t c = 0; c < size; ++c) chunk->push_back(readElem());
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

template <typename T, typename WriteElem>
void writeSequence(Writer& out, const support::PVector<T>& seq,
                   const ChunkTable<T>& table, WriteElem writeElem) {
  const auto* spine = seq.spine();
  out.u64(spine == nullptr ? 0 : spine->size());
  if (spine != nullptr)
    for (const auto& chunk : *spine) out.u64(table.indexOf.at(chunk.get()));
  out.u64(seq.tail().size());
  for (const T& item : seq.tail()) writeElem(item);
}

template <typename T, typename ReadElem>
support::PVector<T> readSequence(
    Reader& in, const std::vector<std::shared_ptr<const std::vector<T>>>& table,
    ReadElem readElem) {
  using Sequence = support::PVector<T>;
  const std::uint64_t numChunks = in.u64();
  std::shared_ptr<const typename Sequence::Spine> spine;
  if (numChunks != 0) {
    auto building = std::make_shared<typename Sequence::Spine>();
    building->reserve(numChunks);
    for (std::uint64_t i = 0; i < numChunks; ++i) {
      const std::uint64_t index = in.u64();
      if (index >= table.size())
        throw SnapshotError("state references an unknown sequence chunk");
      building->push_back(table[index]);
    }
    spine = std::move(building);
  }
  const std::uint64_t tailSize = in.u64();
  if (tailSize >= Sequence::chunkCapacity())
    throw SnapshotError("sequence tail over-full (corrupt checkpoint)");
  std::vector<T> tail;
  tail.reserve(tailSize);
  for (std::uint64_t i = 0; i < tailSize; ++i) tail.push_back(readElem());
  Sequence seq;
  seq.restoreSnapshot(std::move(spine), std::move(tail));
  return seq;
}

void writeState(Writer& out, const ExecutionState& state,
                const std::unordered_map<const void*, std::uint64_t>& blobOf,
                const SharedTables& tables) {
  out.u64(state.id());
  out.u32(state.node());
  out.u8(static_cast<std::uint8_t>(state.status));
  out.str(state.failureMessage);
  out.u64(state.clock);
  out.u64(state.pc);

  out.u64(state.callStack.size());
  for (const std::size_t frame : state.callStack) out.u64(frame);

  for (const expr::Ref reg : state.regs_) writeRef(out, reg);

  out.u64(state.space.nextObjectId());
  out.u64(state.space.objects().size());
  for (const auto& [objectId, cells] : state.space.objects()) {
    out.u64(objectId);
    out.u64(blobOf.at(cells.get()));
  }

  const auto writeRefElem = [&out](const expr::Ref& ref) {
    writeRef(out, ref);
  };
  writeSequence(out, state.constraints.items(), tables.refs, writeRefElem);

  // Event queue: a reference into the queue blob table (or the null
  // sentinel for an empty queue) — its CoW sharing class round-trips
  // like a memory blob's.
  const auto& queuePayload = state.pendingEvents.events().raw();
  out.u64(queuePayload == nullptr ? kNullQueue
                                  : tables.queues.indexOf.at(
                                        queuePayload.get()));
  out.u64(state.nextEventSeq);

  out.u64(state.activeTimers.size());
  for (const auto& [timer, seq] : state.activeTimers) {
    out.u32(timer);
    out.u64(seq);
  }

  writeSequence(out, state.commLog.records(), tables.comm,
                [&out](const vm::CommRecord& record) {
                  writeCommRecord(out, record);
                });

  writeSequence(out, state.decisions, tables.decisions,
                [&out](const ExecutionState::DecisionRecord& decision) {
                  writeDecisionRecord(out, decision);
                });

  writeSequence(out, state.symbolics, tables.refs, writeRefElem);

  out.u64(state.symbolicCounters.size());
  for (const auto& [label, next] : state.symbolicCounters) {
    out.str(label);
    out.u32(next);
  }

  out.u64(state.executedInstructions);

  // v5: the merge side tables. Merge tokens and the mergedAway flag are
  // transient (checkpoints fire between events, when both are vacuous).
  out.u64(state.mergeGuards.size());
  for (const vm::MergeGuard& guard : state.mergeGuards)
    writeMergeGuard(out, guard);
}

// Reader-side counterpart of SharedTables: the deserialized shared
// blocks, indexed as the writer numbered them.
struct RestoredTables {
  std::vector<std::shared_ptr<const std::vector<expr::Ref>>> refs;
  std::vector<std::shared_ptr<const std::vector<vm::CommRecord>>> comm;
  std::vector<std::shared_ptr<const std::vector<ExecutionState::DecisionRecord>>>
      decisions;
  std::vector<std::shared_ptr<std::vector<vm::PendingEvent>>> queues;
};

void readStateBody(
    Reader& in, const expr::Context& ctx, ExecutionState& state,
    const std::vector<std::shared_ptr<vm::AddressSpace::Cells>>& blobs,
    const RestoredTables& tables) {
  const std::uint8_t status = in.u8();
  if (status > static_cast<std::uint8_t>(vm::StateStatus::kKilled))
    throw SnapshotError("unknown state status in checkpoint");
  state.status = static_cast<vm::StateStatus>(status);
  state.failureMessage = in.str();
  state.clock = in.u64();
  state.pc = in.u64();

  const std::uint64_t frames = in.u64();
  state.callStack.reserve(frames);
  for (std::uint64_t i = 0; i < frames; ++i)
    state.callStack.push_back(static_cast<std::size_t>(in.u64()));

  for (expr::Ref& reg : state.regs_) reg = readRef(in, ctx);

  const std::uint64_t nextObjectId = in.u64();
  const std::uint64_t numObjects = in.u64();
  std::map<std::uint64_t, std::shared_ptr<vm::AddressSpace::Cells>> objects;
  for (std::uint64_t i = 0; i < numObjects; ++i) {
    const std::uint64_t objectId = in.u64();
    const std::uint64_t blob = in.u64();
    if (blob >= blobs.size())
      throw SnapshotError("state references an unknown memory blob");
    objects.emplace(objectId, blobs[blob]);
  }
  state.space.restoreSnapshot(std::move(objects), nextObjectId);

  const auto readRefElem = [&in, &ctx]() { return readRef(in, ctx); };
  state.constraints.restoreSnapshot(
      readSequence(in, tables.refs, readRefElem));

  const std::uint64_t queueIndex = in.u64();
  if (queueIndex != kNullQueue) {
    if (queueIndex >= tables.queues.size())
      throw SnapshotError("state references an unknown event queue blob");
    vm::EventQueue::Events events;
    events.restoreSnapshot(tables.queues[queueIndex]);
    state.pendingEvents.restoreSnapshot(std::move(events));
  }
  state.nextEventSeq = in.u64();

  const std::uint64_t timers = in.u64();
  for (std::uint64_t i = 0; i < timers; ++i) {
    const std::uint32_t timer = in.u32();
    state.activeTimers[timer] = in.u64();
  }

  state.commLog.restoreSnapshot(
      readSequence(in, tables.comm, [&in]() { return readCommRecord(in); }));

  state.decisions = readSequence(in, tables.decisions, [&in, &ctx]() {
    return readDecisionRecord(in, ctx);
  });

  state.symbolics = readSequence(in, tables.refs, readRefElem);

  const std::uint64_t counters = in.u64();
  for (std::uint64_t i = 0; i < counters; ++i) {
    const std::string label = in.str();
    state.symbolicCounters[label] = in.u32();
  }

  state.executedInstructions = in.u64();

  const std::uint64_t guards = in.u64();
  state.mergeGuards.reserve(guards);
  for (std::uint64_t i = 0; i < guards; ++i)
    state.mergeGuards.push_back(readMergeGuard(in, ctx));
}

void writeQueryCache(Writer& out, const solver::QueryCache& cache) {
  // The result map is unordered; serialize sorted by key (node-id
  // lexicographic — keys are distinct sets, so this is a total order)
  // for deterministic bytes.
  std::vector<const std::pair<const solver::QueryKey, solver::EnumResult>*>
      entries;
  entries.reserve(cache.results().size());
  for (const auto& entry : cache.results()) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    return std::lexicographical_compare(
        a->first.begin(), a->first.end(), b->first.begin(), b->first.end(),
        [](expr::Ref x, expr::Ref y) { return x->id() < y->id(); });
  });

  out.u64(entries.size());
  for (const auto* entry : entries) {
    out.u64(entry->first.size());
    for (const expr::Ref c : entry->first) writeRef(out, c);
    out.u8(static_cast<std::uint8_t>(entry->second.status));
    snapshot::writeAssignment(out, entry->second.model);
  }

  out.u64(cache.recentModels().size());
  for (const expr::Assignment& model : cache.recentModels())
    snapshot::writeAssignment(out, model);

  // v4: the subsumption layer's long-lived model pool. Ordered state —
  // pool reuse returns the first satisfying model, so a resumed run
  // must see the identical deque. (The UNSAT-subset index is derived
  // from the result entries and rebuilt on restore.)
  out.u64(cache.poolModels().size());
  for (const expr::Assignment& model : cache.poolModels())
    snapshot::writeAssignment(out, model);
}

void readQueryCache(Reader& in, const expr::Context& ctx,
                    solver::QueryCache& cache) {
  const std::uint64_t numResults = in.u64();
  std::vector<std::pair<solver::QueryKey, solver::EnumResult>> results;
  results.reserve(numResults);
  for (std::uint64_t i = 0; i < numResults; ++i) {
    solver::QueryKey key;
    const std::uint64_t terms = in.u64();
    key.reserve(terms);
    for (std::uint64_t t = 0; t < terms; ++t) key.push_back(readRef(in, ctx));
    solver::EnumResult result;
    const std::uint8_t status = in.u8();
    if (status > static_cast<std::uint8_t>(solver::EnumStatus::kExhausted))
      throw SnapshotError("unknown solver status in checkpoint");
    result.status = static_cast<solver::EnumStatus>(status);
    result.model = snapshot::readAssignment(in, ctx);
    results.emplace_back(std::move(key), std::move(result));
  }

  std::deque<expr::Assignment> recentModels;
  const std::uint64_t numRecent = in.u64();
  for (std::uint64_t i = 0; i < numRecent; ++i)
    recentModels.push_back(snapshot::readAssignment(in, ctx));

  std::deque<expr::Assignment> poolModels;
  const std::uint64_t numPool = in.u64();
  for (std::uint64_t i = 0; i < numPool; ++i)
    poolModels.push_back(snapshot::readAssignment(in, ctx));

  cache.restoreSnapshot(std::move(results), std::move(recentModels),
                        std::move(poolModels));
}

}  // namespace

void Engine::checkpoint(std::ostream& os) const {
  obs::ScopedPhase scope(profiler_, obs::Phase::kCheckpoint);
  // The suspend record is written *before* the trace-seq scalar below,
  // so the serialized nextSeq points one past it and a resumed run's
  // kCheckpointRestore continues the numbering without a gap.
  if (trace_ != nullptr) {
    trace_->setAmbientTime(virtualNow_);
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kCheckpointSuspend;
    event.a = eventsProcessed_;
    trace_->emit(event);
  }

  Writer out(os);
  out.magic(snapshot::kCheckpointMagic);
  out.u32(snapshot::kCheckpointVersion);

  // Run summary (fixed prefix; see inspectCheckpointHeader).
  out.u32(plan_.topology().numNodes());
  out.str(mapper_->name());
  out.b(booted_);
  out.u64(states_.size());
  out.u64(virtualNow_);
  out.u64(eventsProcessed_);

  snapshot::writeExprTable(out, ctx_);

  // Memory payload blob table: one entry per distinct Cells allocation,
  // in first-encounter order (states in creation order, objects in id
  // order). States then reference blobs by index, which preserves the
  // copy-on-write sharing classes — and with them the byte-exact
  // simulated-memory accounting — across the round trip.
  std::unordered_map<const void*, std::uint64_t> blobOf;
  std::vector<const vm::AddressSpace::Cells*> blobs;
  for (const auto& state : states_) {
    for (const auto& [objectId, cells] : state->space.objects()) {
      if (blobOf.try_emplace(cells.get(), blobs.size()).second)
        blobs.push_back(cells.get());
    }
  }
  out.u64(blobs.size());
  for (const vm::AddressSpace::Cells* cells : blobs) {
    out.u64(cells->size());
    for (const expr::Ref& cell : *cells) writeRef(out, cell);
  }

  // v3: shared-sequence chunk tables (same pointer-identity discipline
  // as the memory blobs, extended to the persistent state histories and
  // the CoW event queues).
  SharedTables tables;
  for (const auto& state : states_) tables.registerState(*state);
  writeChunkTable(out, tables.refs,
                  [&out](const expr::Ref& ref) { writeRef(out, ref); });
  writeChunkTable(out, tables.comm, [&out](const vm::CommRecord& record) {
    writeCommRecord(out, record);
  });
  writeChunkTable(out, tables.decisions,
                  [&out](const ExecutionState::DecisionRecord& decision) {
                    writeDecisionRecord(out, decision);
                  });
  out.u64(tables.queues.queues.size());
  for (const std::vector<vm::PendingEvent>* queue : tables.queues.queues) {
    out.u64(queue->size());
    for (const vm::PendingEvent& event : *queue) writePendingEvent(out, event);
  }

  // Engine scalars.
  out.u64(nextStateId_);
  out.u64(nextPacketId_);
  out.u64(nextMergeGuard_);  // v5
  out.f64(wallSecondsAccumulated_);
  // Trace continuity (v2): where the suspended run's event numbering
  // stops. 0 when the run was not traced — a traced resume of an
  // untraced run simply starts a fresh stream.
  out.u64(trace_ != nullptr ? trace_->nextSeq() : 0);

  // Decision filter (sorted: the member is an unordered map).
  std::vector<std::pair<std::string, bool>> filter(decisionFilter_.begin(),
                                                   decisionFilter_.end());
  std::sort(filter.begin(), filter.end());
  out.u64(filter.size());
  for (const auto& [name, value] : filter) {
    out.str(name);
    out.b(value);
  }

  // Stats registries (all three feed the fingerprint digest). The
  // peak-memory counter is deliberately dropped — checkpoint.hpp
  // explains why.
  snapshot::writeStats(out, stats_, kPeakMemoryCounter);
  snapshot::writeStats(out, interp_.stats());
  snapshot::writeStats(out, solver_.stats());

  writeQueryCache(out, solver_.cache());

  out.u64(states_.size());
  for (const auto& state : states_) writeState(out, *state, blobOf, tables);

  // Scheduler heap (ascending pop order) and its stale-drop counter.
  out.u64(scheduler_.staleDrops());
  const std::vector<Scheduler::Entry> entries = scheduler_.snapshotEntries();
  out.u64(entries.size());
  for (const Scheduler::Entry& entry : entries) {
    out.u64(entry.time);
    out.u32(entry.node);
    out.u8(entry.kind);
    out.u64(entry.seq);
    out.u64(entry.state);
  }

  // v5: the loop-summary detector (per state+timer observation streaks).
  // std::map iterates in key order — deterministic bytes for free.
  out.u64(loopDetector_.size());
  for (const auto& [key, entry] : loopDetector_) {
    out.u64(key.first);
    out.u32(key.second);
    out.u64(entry.signature);
    out.u64(entry.period);
    out.u64(entry.instructions);
    out.u32(entry.streak);
    out.b(entry.armed);
  }

  mapper_->snapshotSave(out);

  out.magic(snapshot::kCheckpointTrailer);
  SDE_ASSERT(out.ok(), "checkpoint stream write failed");
}

void Engine::restore(std::istream& is) {
  obs::ScopedPhase scope(profiler_, obs::Phase::kCheckpoint);
  SDE_ASSERT(!booted_ && states_.empty() && eventsProcessed_ == 0,
             "restore needs a freshly constructed engine");
  Reader in(is);
  in.expectMagic(snapshot::kCheckpointMagic, "not an SDE checkpoint file");
  const std::uint32_t version = in.u32();
  if (version != snapshot::kCheckpointVersion)
    throw SnapshotError("unsupported checkpoint version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(snapshot::kCheckpointVersion) + ")");

  const std::uint32_t numNodes = in.u32();
  if (numNodes != plan_.topology().numNodes())
    throw SnapshotError(
        "checkpoint is for a " + std::to_string(numNodes) +
        "-node network, this engine has " +
        std::to_string(plan_.topology().numNodes()) + " nodes");
  const std::string mapperName = in.str();
  if (mapperName != mapper_->name())
    throw SnapshotError("checkpoint was written under mapper " + mapperName +
                        ", this engine runs " + std::string(mapper_->name()));
  const bool booted = in.b();
  const std::uint64_t numStatesHeader = in.u64();
  virtualNow_ = in.u64();
  eventsProcessed_ = in.u64();

  snapshot::readExprTable(in, ctx_);

  std::vector<std::shared_ptr<vm::AddressSpace::Cells>> blobs;
  const std::uint64_t numBlobs = in.u64();
  blobs.reserve(numBlobs);
  for (std::uint64_t i = 0; i < numBlobs; ++i) {
    auto cells = std::make_shared<vm::AddressSpace::Cells>();
    const std::uint64_t size = in.u64();
    cells->reserve(size);
    for (std::uint64_t c = 0; c < size; ++c)
      cells->push_back(readRef(in, ctx_));
    blobs.push_back(std::move(cells));
  }

  RestoredTables tables;
  tables.refs = readChunkTable<expr::Ref>(
      in, [&in, this]() { return readRef(in, ctx_); });
  tables.comm = readChunkTable<vm::CommRecord>(
      in, [&in]() { return readCommRecord(in); });
  tables.decisions = readChunkTable<ExecutionState::DecisionRecord>(
      in, [&in, this]() { return readDecisionRecord(in, ctx_); });
  const std::uint64_t numQueues = in.u64();
  tables.queues.reserve(numQueues);
  for (std::uint64_t i = 0; i < numQueues; ++i) {
    auto queue = std::make_shared<std::vector<vm::PendingEvent>>();
    const std::uint64_t size = in.u64();
    queue->reserve(size);
    for (std::uint64_t e = 0; e < size; ++e)
      queue->push_back(readPendingEvent(in, ctx_));
    tables.queues.push_back(std::move(queue));
  }

  nextStateId_ = in.u64();
  nextPacketId_ = in.u64();
  nextMergeGuard_ = in.u64();  // v5
  wallSecondsAccumulated_ = in.f64();
  const std::uint64_t traceSeq = in.u64();

  decisionFilter_.clear();
  const std::uint64_t filterSize = in.u64();
  for (std::uint64_t i = 0; i < filterSize; ++i) {
    const std::string name = in.str();
    decisionFilter_[name] = in.b();
  }

  snapshot::readStats(in, stats_);
  snapshot::readStats(in, interp_.stats());
  snapshot::readStats(in, solver_.stats());

  readQueryCache(in, ctx_, solver_.cache());

  // Programs come from the plan, not the checkpoint: the caller
  // guarantees an identically configured engine.
  std::unordered_map<NodeId, const vm::Program*> programOf;
  for (const os::NodeConfig& node : plan_.nodes())
    programOf[node.id] = node.program.get();

  const std::uint64_t numStates = in.u64();
  if (numStates != numStatesHeader)
    throw SnapshotError("checkpoint header/body state counts disagree");
  for (std::uint64_t i = 0; i < numStates; ++i) {
    const StateId id = in.u64();
    const NodeId node = in.u32();
    const auto programIt = programOf.find(node);
    if (programIt == programOf.end())
      throw SnapshotError("checkpoint state lives on node " +
                          std::to_string(node) +
                          ", which this plan does not define");
    auto state =
        std::make_unique<ExecutionState>(id, node, *programIt->second);
    readStateBody(in, ctx_, *state, blobs, tables);
    if (!byId_.emplace(id, state.get()).second)
      throw SnapshotError("checkpoint contains duplicate state ids");
    states_.push_back(std::move(state));
  }
  booted_ = booted;
  if (sharedCaps_ != nullptr && !states_.empty())
    sharedCaps_->noteStatesCreated(states_.size());

  const std::uint64_t staleDrops = in.u64();
  const std::uint64_t numEntries = in.u64();
  std::vector<Scheduler::Entry> entries;
  entries.reserve(numEntries);
  for (std::uint64_t i = 0; i < numEntries; ++i) {
    Scheduler::Entry entry;
    entry.time = in.u64();
    entry.node = in.u32();
    entry.kind = in.u8();
    entry.seq = in.u64();
    entry.state = in.u64();
    entries.push_back(entry);
  }
  scheduler_.restoreSnapshot(entries, staleDrops);

  const std::uint64_t loopEntries = in.u64();
  for (std::uint64_t i = 0; i < loopEntries; ++i) {
    const StateId stateId = in.u64();
    const std::uint32_t timerId = in.u32();
    LoopEntry entry;
    entry.signature = in.u64();
    entry.period = in.u64();
    entry.instructions = in.u64();
    entry.streak = in.u32();
    entry.armed = in.b();
    loopDetector_[{stateId, timerId}] = entry;
  }

  mapper_->snapshotLoad(in, [this](StateId id) -> ExecutionState* {
    const auto it = byId_.find(id);
    return it == byId_.end() ? nullptr : it->second;
  });

  in.expectMagic(snapshot::kCheckpointTrailer,
                 "checkpoint trailer missing (truncated file?)");

  // Trace continuity: a sink installed before restore() picks up the
  // suspended run's numbering and marks the resumption. Installed
  // after? The stream starts at seq 0 and the validator treats it as a
  // fresh (non-resumed) stream — consistent either way.
  if (trace_ != nullptr) {
    trace_->setNextSeq(traceSeq);
    trace_->setAmbientTime(virtualNow_);
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kCheckpointRestore;
    event.a = eventsProcessed_;
    trace_->emit(event);
  }
}

}  // namespace sde
