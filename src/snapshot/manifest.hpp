// Durable-run file layout and the run manifest.
//
// A checkpointed partitioned run owns one directory:
//
//   <dir>/manifest.sde     what this run IS: scenario spec, horizon and
//                          the full partition plan. Written once at run
//                          start; a resume validates it and refuses to
//                          mix checkpoints of a different run.
//   <dir>/job_<id>.ckpt    the job's latest engine checkpoint
//                          (checkpoint.hpp format). Present while the
//                          job is unfinished or suspended.
//   <dir>/job_<id>.done    the job's serialized JobResult. Presence is
//                          the completion marker: a resume loads it and
//                          never re-runs the job (the checkpoint file is
//                          deleted once .done exists).
//
// All files are written atomically (temp file + rename), so a worker
// killed mid-write leaves either the previous file or none — never a
// torn one. Torn files can still appear after a hard machine crash;
// readers throw SnapshotError and the runner degrades gracefully (a bad
// .ckpt restarts that job from scratch, a bad .done re-runs it).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <string_view>

#include "sde/parallel.hpp"
#include "snapshot/error.hpp"

namespace sde::snapshot {

inline constexpr std::string_view kManifestMagic = "SDEMANI";
inline constexpr std::string_view kJobResultMagic = "SDEJOBR";
// Bumped on any manifest or job-result layout change (same no-migration
// policy as kCheckpointVersion).
inline constexpr std::uint32_t kManifestVersion = 1;

struct RunManifest {
  std::string scenarioSpec;  // opaque scenario descriptor (see
                             // trace/scenario.hpp codec); empty when the
                             // caller resumes by reconstructing the
                             // scenario itself
  std::uint64_t horizon = 0;
  PartitionPlan plan;
};

// Do two manifests describe the same run (spec, horizon, variables and
// the complete job table)?
[[nodiscard]] bool sameRun(const RunManifest& a, const RunManifest& b);

[[nodiscard]] std::filesystem::path manifestPath(
    const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path jobCheckpointPath(
    const std::filesystem::path& dir, std::uint32_t jobId);
[[nodiscard]] std::filesystem::path jobDonePath(
    const std::filesystem::path& dir, std::uint32_t jobId);
// The durable merged-metrics sidecar of a completed fleet run
// (obs/metrics.hpp binary snapshot; written atomically next to the
// manifest).
[[nodiscard]] std::filesystem::path metricsSnapshotPath(
    const std::filesystem::path& dir);

// Runs `body` against a temporary file next to `path`, then renames it
// into place — readers never observe a partially written file. Throws
// SnapshotError if the stream goes bad (e.g. disk full).
void atomicWriteFile(const std::filesystem::path& path,
                     const std::function<void(std::ostream&)>& body);

void writeManifest(const std::filesystem::path& dir,
                   const RunManifest& manifest);
// Throws SnapshotError on missing/foreign/corrupt manifests.
[[nodiscard]] RunManifest readManifest(const std::filesystem::path& dir);

// Binds a run to its directory — the shared entry point of the thread
// runner and the process fleet. With `resume` set and a manifest
// present, validates it describes the same run (throws SnapshotError
// otherwise) and returns true; else clears leftover per-job files of
// any older run, writes the manifest, and returns false (fresh start).
// The directory must already exist.
bool prepareRunDir(const std::filesystem::path& dir,
                   const RunManifest& manifest, bool resume);

// Stream-level JobResult codec (exposed for the CLI inspector).
void writeJobResult(std::ostream& os, const JobResult& result);
[[nodiscard]] JobResult readJobResult(std::istream& is);

void writeJobResultFile(const std::filesystem::path& path,
                        const JobResult& result);
[[nodiscard]] JobResult readJobResultFile(const std::filesystem::path& path);

}  // namespace sde::snapshot
