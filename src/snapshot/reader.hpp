// Binary snapshot reader, the inverse of snapshot::Writer. Every read
// is bounds-checked against the stream: a truncated or foreign file
// raises SnapshotError with a message naming what was expected — never
// undefined behaviour, never a silent partial restore.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>

#include "snapshot/error.hpp"
#include "snapshot/writer.hpp"  // kMagicSize

namespace sde::snapshot {

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] double f64();
  // Length-prefixed string; `maxLength` guards against trusting a
  // corrupt length field with an allocation.
  [[nodiscard]] std::string str(std::uint64_t maxLength = 1u << 20);
  // Reads 8 bytes and checks them against `tag`; throws SnapshotError
  // naming `what` when they differ (e.g. "not an SDE checkpoint file").
  void expectMagic(std::string_view tag, std::string_view what);
  // Reads 8 bytes and returns them NUL-trimmed (header sniffing).
  [[nodiscard]] std::string peekTag();

  void raw(void* data, std::size_t n);

 private:
  std::istream& is_;
};

}  // namespace sde::snapshot
