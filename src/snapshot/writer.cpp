#include "snapshot/writer.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "support/assert.hpp"

namespace sde::snapshot {

void Writer::u32(std::uint32_t v) {
  std::array<std::uint8_t, 4> bytes{};
  for (unsigned i = 0; i < 4; ++i)
    bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(bytes.data(), bytes.size());
}

void Writer::u64(std::uint64_t v) {
  std::array<std::uint8_t, 8> bytes{};
  for (unsigned i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(bytes.data(), bytes.size());
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void Writer::magic(std::string_view tag) {
  SDE_ASSERT(tag.size() <= kMagicSize, "magic tag too long");
  std::array<char, kMagicSize> padded{};
  std::memcpy(padded.data(), tag.data(), tag.size());
  raw(padded.data(), padded.size());
}

void Writer::raw(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(n));
}

}  // namespace sde::snapshot
