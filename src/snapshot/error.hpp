// Error type of the snapshot subsystem. Thrown (never asserted) for
// conditions a correct program can encounter at runtime: truncated or
// corrupt checkpoint files, version mismatches, checkpoints written for
// a different scenario. Callers that can fall back (the parallel runner
// restarting a job whose checkpoint is torn) catch it; tools surface the
// message to the user.
#pragma once

#include <stdexcept>
#include <string>

namespace sde::snapshot {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace sde::snapshot
