#include "snapshot/shared_cache_io.hpp"

#include <filesystem>
#include <istream>
#include <ostream>

#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde::snapshot {

namespace {
// Bumped with kCheckpointVersion whenever the sidecar layout changes.
constexpr std::uint32_t kSharedCacheFormat = 1;
}  // namespace

void writeSharedCacheEntries(std::ostream& os,
                             const SharedCacheEntries& entries) {
  Writer out(os);
  out.magic(kSharedCacheMagic);
  out.u32(kSharedCacheFormat);
  out.u64(entries.size());
  for (const auto& [key, result] : entries) {
    out.u64(key.size());
    for (const std::uint64_t hash : key) out.u64(hash);
    out.u8(static_cast<std::uint8_t>(result.status));
    out.u64(result.model.size());
    for (const solver::SharedBinding& binding : result.model) {
      out.str(binding.name);
      out.u32(binding.width);
      out.u64(binding.value);
    }
  }
  if (!out.ok()) throw SnapshotError("shared-cache sidecar write failed");
}

SharedCacheEntries readSharedCacheEntries(std::istream& is) {
  Reader in(is);
  in.expectMagic(kSharedCacheMagic, "not a shared-cache sidecar");
  const std::uint32_t format = in.u32();
  if (format != kSharedCacheFormat)
    throw SnapshotError("shared-cache sidecar format " +
                        std::to_string(format) + " (expected " +
                        std::to_string(kSharedCacheFormat) + ")");
  SharedCacheEntries entries;
  const std::uint64_t numEntries = in.u64();
  entries.reserve(numEntries);
  for (std::uint64_t i = 0; i < numEntries; ++i) {
    solver::SharedQueryKey key;
    const std::uint64_t terms = in.u64();
    key.reserve(terms);
    for (std::uint64_t t = 0; t < terms; ++t) key.push_back(in.u64());
    solver::SharedQueryResult result;
    const std::uint8_t status = in.u8();
    if (status > static_cast<std::uint8_t>(solver::EnumStatus::kExhausted))
      throw SnapshotError("unknown solver status in shared-cache sidecar");
    result.status = static_cast<solver::EnumStatus>(status);
    const std::uint64_t bindings = in.u64();
    result.model.reserve(bindings);
    for (std::uint64_t b = 0; b < bindings; ++b) {
      solver::SharedBinding binding;
      binding.name = in.str();
      binding.width = in.u32();
      binding.value = in.u64();
      result.model.push_back(std::move(binding));
    }
    entries.emplace_back(std::move(key), std::move(result));
  }
  return entries;
}

void writeSharedCache(std::ostream& os,
                      const solver::SharedQueryCache& cache) {
  writeSharedCacheEntries(os, cache.sortedEntries());
}

void readSharedCache(std::istream& is, solver::SharedQueryCache& cache) {
  cache.clear();
  for (auto& [key, result] : readSharedCacheEntries(is))
    cache.insert(std::move(key), std::move(result));
}

std::string sharedCachePath(const std::string& checkpointDir) {
  return (std::filesystem::path(checkpointDir) / "shared_cache.bin").string();
}

}  // namespace sde::snapshot
