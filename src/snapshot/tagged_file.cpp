#include "snapshot/tagged_file.hpp"

#include <fstream>
#include <string>

#include "snapshot/manifest.hpp"

namespace sde::snapshot {

void writeTaggedFile(const std::filesystem::path& path, std::string_view magic,
                     std::uint32_t version,
                     const std::function<void(Writer&)>& body) {
  atomicWriteFile(path, [&](std::ostream& os) {
    Writer out(os);
    out.magic(magic);
    out.u32(version);
    body(out);
  });
}

void readTaggedFile(const std::filesystem::path& path, std::string_view magic,
                    std::uint32_t version, std::string_view what,
                    const std::function<void(Reader&)>& body) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open " + path.string());
  Reader in(is);
  in.expectMagic(magic, what);
  const std::uint32_t found = in.u32();
  if (found != version)
    throw SnapshotError("unsupported version " + std::to_string(found) +
                        " in " + path.string() + " (this build reads " +
                        std::to_string(version) + ")");
  body(in);
}

}  // namespace sde::snapshot
