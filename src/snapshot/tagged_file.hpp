// Tagged-file helpers: the magic + version + body framing every durable
// SDE artifact uses (manifests, job results, serve job specs), with
// atomic-rename publication on the write side and early foreign-file
// rejection on the read side. Factoring the frame here keeps new file
// kinds honest — they cannot forget the version check or the atomic
// write, because the helper owns both.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string_view>

#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde::snapshot {

// Atomically writes `path` (temp + rename) as: magic | u32 version |
// body. Throws SnapshotError on I/O failure.
void writeTaggedFile(const std::filesystem::path& path, std::string_view magic,
                     std::uint32_t version,
                     const std::function<void(Writer&)>& body);

// Opens `path`, checks the magic (`what` names the expectation in the
// error) and the exact version, then hands the reader to `body`.
// Throws SnapshotError on a missing file, foreign magic, version
// mismatch, or truncation inside `body`.
void readTaggedFile(const std::filesystem::path& path, std::string_view magic,
                    std::uint32_t version, std::string_view what,
                    const std::function<void(Reader&)>& body);

}  // namespace sde::snapshot
