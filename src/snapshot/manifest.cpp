#include "snapshot/manifest.hpp"

#include <fstream>
#include <string>

#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde::snapshot {

namespace {

void checkVersion(std::uint32_t version) {
  if (version != kManifestVersion)
    throw SnapshotError("unsupported manifest version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kManifestVersion) + ")");
}

RunOutcome decodeOutcome(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(RunOutcome::kSuspended))
    throw SnapshotError("unknown run outcome in job result file");
  return static_cast<RunOutcome>(raw);
}

}  // namespace

bool sameRun(const RunManifest& a, const RunManifest& b) {
  if (a.scenarioSpec != b.scenarioSpec || a.horizon != b.horizon ||
      a.plan.variables != b.plan.variables ||
      a.plan.jobs.size() != b.plan.jobs.size())
    return false;
  for (std::size_t i = 0; i < a.plan.jobs.size(); ++i) {
    const PartitionJob& x = a.plan.jobs[i];
    const PartitionJob& y = b.plan.jobs[i];
    if (x.id != y.id || x.seed != y.seed || x.forced != y.forced) return false;
  }
  return true;
}

std::filesystem::path manifestPath(const std::filesystem::path& dir) {
  return dir / "manifest.sde";
}

std::filesystem::path jobCheckpointPath(const std::filesystem::path& dir,
                                        std::uint32_t jobId) {
  return dir / ("job_" + std::to_string(jobId) + ".ckpt");
}

std::filesystem::path jobDonePath(const std::filesystem::path& dir,
                                  std::uint32_t jobId) {
  return dir / ("job_" + std::to_string(jobId) + ".done");
}

std::filesystem::path metricsSnapshotPath(const std::filesystem::path& dir) {
  return dir / "metrics.sde";
}

void atomicWriteFile(const std::filesystem::path& path,
                     const std::function<void(std::ostream&)>& body) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os)
      throw SnapshotError("cannot open " + tmp.string() + " for writing");
    body(os);
    os.flush();
    if (!os)
      throw SnapshotError("write to " + tmp.string() +
                          " failed (disk full?)");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw SnapshotError("cannot rename " + tmp.string() + " to " +
                        path.string() + ": " + ec.message());
}

void writeManifest(const std::filesystem::path& dir,
                   const RunManifest& manifest) {
  atomicWriteFile(manifestPath(dir), [&](std::ostream& os) {
    Writer out(os);
    out.magic(kManifestMagic);
    out.u32(kManifestVersion);
    out.str(manifest.scenarioSpec);
    out.u64(manifest.horizon);
    out.u64(manifest.plan.variables.size());
    for (const std::string& name : manifest.plan.variables) out.str(name);
    out.u64(manifest.plan.jobs.size());
    for (const PartitionJob& job : manifest.plan.jobs) {
      out.u32(job.id);
      out.u64(job.seed);
      out.u64(job.forced.size());
      for (const auto& [name, value] : job.forced) {
        out.str(name);
        out.b(value);
      }
    }
  });
}

RunManifest readManifest(const std::filesystem::path& dir) {
  std::ifstream is(manifestPath(dir), std::ios::binary);
  if (!is)
    throw SnapshotError("cannot open run manifest " +
                        manifestPath(dir).string());
  Reader in(is);
  in.expectMagic(kManifestMagic, "not an SDE run manifest");
  checkVersion(in.u32());
  RunManifest manifest;
  manifest.scenarioSpec = in.str();
  manifest.horizon = in.u64();
  const std::uint64_t numVariables = in.u64();
  manifest.plan.variables.reserve(numVariables);
  for (std::uint64_t i = 0; i < numVariables; ++i)
    manifest.plan.variables.push_back(in.str());
  const std::uint64_t numJobs = in.u64();
  manifest.plan.jobs.reserve(numJobs);
  for (std::uint64_t i = 0; i < numJobs; ++i) {
    PartitionJob job;
    job.id = in.u32();
    job.seed = in.u64();
    const std::uint64_t numForced = in.u64();
    job.forced.reserve(numForced);
    for (std::uint64_t f = 0; f < numForced; ++f) {
      std::string name = in.str();
      const bool value = in.b();
      job.forced.emplace_back(std::move(name), value);
    }
    manifest.plan.jobs.push_back(std::move(job));
  }
  return manifest;
}

bool prepareRunDir(const std::filesystem::path& dir,
                   const RunManifest& manifest, bool resume) {
  if (resume && std::filesystem::exists(manifestPath(dir))) {
    const RunManifest prior = readManifest(dir);
    if (!sameRun(prior, manifest))
      throw SnapshotError(
          "checkpoint directory " + dir.string() +
          " belongs to a different run (manifest mismatch); refusing to "
          "resume");
    return true;
  }
  for (const PartitionJob& job : manifest.plan.jobs) {
    std::error_code ec;
    std::filesystem::remove(jobCheckpointPath(dir, job.id), ec);
    std::filesystem::remove(jobDonePath(dir, job.id), ec);
  }
  writeManifest(dir, manifest);
  return false;
}

void writeJobResult(std::ostream& os, const JobResult& result) {
  Writer out(os);
  out.magic(kJobResultMagic);
  out.u32(kManifestVersion);
  out.u32(result.jobId);
  out.u8(static_cast<std::uint8_t>(result.outcome));
  out.u64(result.states);
  out.u64(result.events);
  out.u64(result.groups);
  out.u64(result.memoryBytes);
  out.u64(result.scenariosRepresented);
  out.u64(result.scenariosOwned);
  out.f64(result.wallSeconds);
  out.u64(result.scenarioFingerprints.size());
  for (const std::uint64_t print : result.scenarioFingerprints) out.u64(print);
  out.u64(result.stateFingerprints.size());
  for (const std::uint64_t print : result.stateFingerprints) out.u64(print);
  out.u64(result.testcases.size());
  for (const std::string& testcase : result.testcases) out.str(testcase);
  out.u64(result.stats.all().size());
  for (const auto& [name, value] : result.stats.all()) {
    out.str(name);
    out.u64(value);
  }
}

JobResult readJobResult(std::istream& is) {
  Reader in(is);
  in.expectMagic(kJobResultMagic, "not an SDE job result file");
  checkVersion(in.u32());
  JobResult result;
  result.jobId = in.u32();
  result.outcome = decodeOutcome(in.u8());
  result.states = in.u64();
  result.events = in.u64();
  result.groups = in.u64();
  result.memoryBytes = in.u64();
  result.scenariosRepresented = in.u64();
  result.scenariosOwned = in.u64();
  result.wallSeconds = in.f64();
  const std::uint64_t numScenarioPrints = in.u64();
  result.scenarioFingerprints.reserve(numScenarioPrints);
  for (std::uint64_t i = 0; i < numScenarioPrints; ++i)
    result.scenarioFingerprints.push_back(in.u64());
  const std::uint64_t numStatePrints = in.u64();
  result.stateFingerprints.reserve(numStatePrints);
  for (std::uint64_t i = 0; i < numStatePrints; ++i)
    result.stateFingerprints.push_back(in.u64());
  const std::uint64_t numTestcases = in.u64();
  result.testcases.reserve(numTestcases);
  for (std::uint64_t i = 0; i < numTestcases; ++i)
    result.testcases.push_back(in.str(1u << 24));
  const std::uint64_t numCounters = in.u64();
  for (std::uint64_t i = 0; i < numCounters; ++i) {
    const std::string name = in.str();
    result.stats.set(name, in.u64());
  }
  return result;
}

void writeJobResultFile(const std::filesystem::path& path,
                        const JobResult& result) {
  atomicWriteFile(path,
                  [&](std::ostream& os) { writeJobResult(os, result); });
}

JobResult readJobResultFile(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw SnapshotError("cannot open job result file " + path.string());
  return readJobResult(is);
}

}  // namespace sde::snapshot
