#include "os/events.hpp"

namespace sde::os {

vm::Entry entryFor(vm::EventKind kind) {
  switch (kind) {
    case vm::EventKind::kBoot:
      return vm::Entry::kInit;
    case vm::EventKind::kTimer:
      return vm::Entry::kTimer;
    case vm::EventKind::kRecv:
      return vm::Entry::kRecv;
  }
  SDE_UNREACHABLE("unknown event kind");
}

void dispatchEvent(expr::Context& ctx, vm::Interpreter& interp,
                   vm::ExecutionState& state, const vm::PendingEvent& event,
                   vm::EffectSink& sink) {
  state.clock = event.time;
  const vm::Entry entry = entryFor(event.kind);
  if (!state.program().entry(entry)) return;  // program ignores this event

  std::vector<expr::Ref> args;
  switch (event.kind) {
    case vm::EventKind::kBoot:
      break;
    case vm::EventKind::kTimer:
      args.push_back(ctx.constant(event.a, 64));
      break;
    case vm::EventKind::kRecv: {
      const std::uint64_t obj = state.space.allocFrom(event.payload);
      args.push_back(ctx.constant(obj, 64));
      args.push_back(ctx.constant(event.a, 64));  // source node
      args.push_back(ctx.constant(event.payload.size(), 64));
      break;
    }
  }
  interp.runEvent(state, entry, args, sink);
}

}  // namespace sde::os
