// Node and network configuration: which program each node runs and when
// it boots. A NetworkPlan is the static description the SDE engine
// instantiates into the initial k execution states. Programs are held
// by shared ownership so a plan (and the engines built from it) never
// dangles when callers pass temporaries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "vm/program.hpp"

namespace sde::os {

struct NodeConfig {
  net::NodeId id = 0;
  std::shared_ptr<const vm::Program> program;
  std::uint64_t bootTime = 0;
};

class NetworkPlan {
 public:
  explicit NetworkPlan(net::Topology topology)
      : topology_(std::move(topology)) {}

  // Assigns `program` to every node, booting at `bootTime`. The by-value
  // overload takes ownership of (a copy of) the program; all nodes share
  // one image.
  void runEverywhere(vm::Program program, std::uint64_t bootTime = 0);
  void runEverywhere(std::shared_ptr<const vm::Program> program,
                     std::uint64_t bootTime = 0);

  // Assigns `program` to a single node (overrides a previous assignment).
  void runOn(net::NodeId node, vm::Program program,
             std::uint64_t bootTime = 0);
  void runOn(net::NodeId node, std::shared_ptr<const vm::Program> program,
             std::uint64_t bootTime = 0);

  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] const std::vector<NodeConfig>& nodes() const { return nodes_; }
  // Every node must have a program before the engine can start.
  [[nodiscard]] bool complete() const;

 private:
  net::Topology topology_;
  std::vector<NodeConfig> nodes_;
};

}  // namespace sde::os
