#include "os/node.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace sde::os {

void NetworkPlan::runEverywhere(vm::Program program, std::uint64_t bootTime) {
  runEverywhere(std::make_shared<const vm::Program>(std::move(program)),
                bootTime);
}

void NetworkPlan::runEverywhere(std::shared_ptr<const vm::Program> program,
                                std::uint64_t bootTime) {
  SDE_ASSERT(program != nullptr, "null program");
  for (net::NodeId id = 0; id < topology_.numNodes(); ++id)
    runOn(id, program, bootTime);
}

void NetworkPlan::runOn(net::NodeId node, vm::Program program,
                        std::uint64_t bootTime) {
  runOn(node, std::make_shared<const vm::Program>(std::move(program)),
        bootTime);
}

void NetworkPlan::runOn(net::NodeId node,
                        std::shared_ptr<const vm::Program> program,
                        std::uint64_t bootTime) {
  SDE_ASSERT(node < topology_.numNodes(), "node id out of range");
  SDE_ASSERT(program != nullptr, "null program");
  const auto it = std::find_if(nodes_.begin(), nodes_.end(),
                               [&](const NodeConfig& c) {
                                 return c.id == node;
                               });
  if (it != nodes_.end()) {
    it->program = std::move(program);
    it->bootTime = bootTime;
    return;
  }
  nodes_.push_back({node, std::move(program), bootTime});
}

bool NetworkPlan::complete() const {
  if (nodes_.size() != topology_.numNodes()) return false;
  return std::all_of(nodes_.begin(), nodes_.end(), [](const NodeConfig& c) {
    return c.program != nullptr;
  });
}

}  // namespace sde::os
