// Node lifecycle: boot and reboot of execution states. Boot creates the
// globals segment and schedules the kBoot event; reboot (used by the
// SymbolicRebootModel) resets volatile node state in place, modelling a
// watchdog reset of a sensor node.
#pragma once

#include "os/node.hpp"
#include "vm/state.hpp"

namespace sde::os {

// Prepares a freshly constructed state: initialises the globals segment
// and enqueues the boot event at `bootTime`.
void setupBoot(expr::Context& ctx, vm::ExecutionState& state,
               std::uint64_t bootTime);

// Resets `state` as a node reboot at time `now`: zeroes the globals,
// cancels all timers and pending events, and schedules a fresh boot.
// Path constraints, the communication history and symbolic counters
// survive — those describe the already-explored execution, not the
// node's RAM.
void reboot(expr::Context& ctx, vm::ExecutionState& state, std::uint64_t now);

}  // namespace sde::os
