// Event dispatch glue: translates engine-level pending events into VM
// handler invocations with the documented register ABI. This is the
// moral equivalent of Contiki's process_post/event loop boundary.
#pragma once

#include "vm/interp.hpp"
#include "vm/program.hpp"
#include "vm/state.hpp"

namespace sde::os {

// Program entry dispatched for an event kind.
[[nodiscard]] vm::Entry entryFor(vm::EventKind kind);

// Runs `event` on `state`: advances the state clock, materialises packet
// payloads into a fresh object, marshals arguments (kTimer: r0 = timer
// id; kRecv: r0 = payload object, r1 = source node, r2 = cell count) and
// invokes the interpreter. Forked siblings are reported through `sink`.
void dispatchEvent(expr::Context& ctx, vm::Interpreter& interp,
                   vm::ExecutionState& state, const vm::PendingEvent& event,
                   vm::EffectSink& sink);

}  // namespace sde::os
