#include "os/runtime.hpp"

namespace sde::os {

void setupBoot(expr::Context& ctx, vm::ExecutionState& state,
               std::uint64_t bootTime) {
  state.space.initGlobals(ctx, state.program().globalsSize());
  vm::PendingEvent boot;
  boot.time = bootTime;
  boot.kind = vm::EventKind::kBoot;
  boot.seq = state.nextEventSeq++;
  state.pendingEvents.push_back(std::move(boot));
}

void reboot(expr::Context& ctx, vm::ExecutionState& state, std::uint64_t now) {
  const std::uint64_t globals = state.space.objectSize(vm::kGlobalsObject);
  for (std::uint64_t i = 0; i < globals; ++i)
    state.space.store(vm::kGlobalsObject, i, ctx.constant(0, 64));
  state.pendingEvents.clear();
  state.activeTimers.clear();
  vm::PendingEvent boot;
  boot.time = now;
  boot.kind = vm::EventKind::kBoot;
  boot.seq = state.nextEventSeq++;
  state.pendingEvents.push_back(std::move(boot));
}

}  // namespace sde::os
