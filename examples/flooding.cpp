// Network flooding — the paper's adversarial case (§IV-C): "it is easy
// to set-up test scenarios ... where COW and SDS algorithms perform
// nearly as bad as COB. One example would be a full-meshed network where
// nodes continuously transmit data to their k-1 neighbors."
//
// This example floods a dissemination wave through (a) a full mesh and
// (b) a grid, with symbolic drops everywhere, and shows how the
// algorithms converge on the mesh but separate on the grid.
//
// Usage: flooding [nodes] [waves]   e.g. ./build/examples/flooding 5 2
#include <cstdio>
#include <cstdlib>

#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace {

void runCase(const char* label, bool fullMesh, std::uint32_t nodes,
             std::uint64_t simTime) {
  using namespace sde;
  std::printf("--- %s ---\n", label);
  trace::TextTable table(
      {"Algorithm", "Outcome", "States", "Groups", "Runtime"});
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    trace::FloodScenarioConfig config;
    config.nodes = nodes;
    config.fullMesh = fullMesh;
    config.simulationTime = simTime;
    config.mapper = kind;
    config.engine.maxStates = 300'000;
    config.engine.maxWallSeconds = 30;
    trace::FloodScenario scenario(config);
    const auto result = scenario.run();
    table.addRow({std::string(mapperKindName(kind)),
                  std::string(runOutcomeName(result.outcome)),
                  trace::formatCount(result.states),
                  trace::formatCount(result.groups),
                  trace::formatDuration(result.wallSeconds)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 5;
  const std::uint64_t waves =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  const std::uint64_t simTime = waves * 1000 + 500;

  runCase("full mesh (no bystanders: SDS ~ COW ~ COB)", true, nodes,
          simTime);
  runCase("grid (bystanders exist: SDS < COW < COB)", false,
          nodes * nodes, simTime);
  std::printf(
      "Flooding saturates the mapping algorithms on purpose; protocols\n"
      "with local communication are where SDE shines (paper SS IV-C).\n");
  return 0;
}
