// The paper's evaluation scenario (§IV): a w x h grid sensornet, a
// source streaming data packets along a preconfigured static route to
// the sink, and symbolic packet drops on the data path and its radio
// neighbourhood. Runs all three state-mapping algorithms and prints the
// comparison — a miniature, interactive Table I.
//
// Usage: grid_collect [width] [height] [simulated-time] e.g.
//        ./build/examples/grid_collect 5 5 5000
#include <cstdio>
#include <cstdlib>

#include "sde/explode.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

int main(int argc, char** argv) {
  using namespace sde;

  const std::uint32_t width =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::uint32_t height =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
  const std::uint64_t simTime =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5000;

  std::printf(
      "Grid collect: %ux%u nodes, sink top-left, source bottom-right,\n"
      "1 packet per 1000 time units for %llu units, symbolic drops on the\n"
      "data path and its neighbours (paper SS IV-A).\n\n",
      width, height, static_cast<unsigned long long>(simTime));

  trace::TextTable table({"Algorithm", "Outcome", "Runtime", "States",
                          "Memory", "Groups", "dscenarios",
                          "dup(strict)"});

  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    trace::CollectScenarioConfig config;
    config.gridWidth = width;
    config.gridHeight = height;
    config.simulationTime = simTime;
    config.mapper = kind;
    config.engine.maxStates = 500'000;
    config.engine.maxWallSeconds = 60;
    trace::CollectScenario scenario(config);
    const auto result = scenario.run();
    table.addRow({std::string(mapperKindName(kind)),
                  std::string(runOutcomeName(result.outcome)),
                  trace::formatDuration(result.wallSeconds),
                  trace::formatCount(result.states),
                  trace::formatBytes(result.memoryBytes),
                  trace::formatCount(result.groups),
                  trace::formatCount(countScenarios(scenario.engine().mapper())),
                  trace::formatCount(
                      result.duplicatesStrict.duplicateStates)});

    if (kind == MapperKind::kSds) {
      // Show what the sink observed across a few explored behaviours.
      std::printf("sink-node behaviours under SDS (first 8 states):\n");
      int shown = 0;
      for (const auto* state : scenario.engine().statesOfNode(0)) {
        if (shown++ == 8) break;
        const auto received =
            state->space.load(vm::kGlobalsObject, rime::kCollectRecvCount);
        std::printf("  state %llu: received %llu packet(s), %zu constraints\n",
                    static_cast<unsigned long long>(state->id()),
                    static_cast<unsigned long long>(received->value()),
                    state->constraints.size());
      }
      std::printf("\n");
    }
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
