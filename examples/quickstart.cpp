// Quickstart: symbolic distributed execution of a two-node ping/pong
// over a symbolically lossy link, in ~60 lines of API use.
//
//   1. Describe the network (topology + node programs + roles).
//   2. Pick a state-mapping algorithm (SDS — the paper's contribution).
//   3. Inject a network failure model (symbolic packet drops).
//   4. Run, then harvest the explored states and their test cases.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "rime/apps.hpp"
#include "sde/engine.hpp"
#include "sde/testcase.hpp"

int main() {
  using namespace sde;

  // Two radio-adjacent nodes; node 0 pings node 1 every 100 time units.
  os::NetworkPlan plan(net::Topology::line(2));
  plan.runEverywhere(rime::buildPingApp());

  Engine engine(plan, MapperKind::kSds);
  for (const auto& boot : rime::pingBootGlobals(/*pinger=*/0,
                                                /*responder=*/1,
                                                /*interval=*/100))
    engine.setBootGlobal(boot.node, boot.slot, boot.value);

  // Both nodes may symbolically drop one received packet: on first
  // reception the receiving state forks — one branch processes the
  // packet, the sibling saw the radio receive it but dropped it.
  engine.setFailureModel(std::make_unique<net::SymbolicDropModel>(
      std::vector<net::NodeId>{0, 1}, /*maxPerNode=*/1));

  const RunOutcome outcome = engine.run(/*untilVirtualTime=*/500);
  std::printf("run %s: %llu states, %llu packets, %llu events\n\n",
              runOutcomeName(outcome).data(),
              static_cast<unsigned long long>(engine.numStates()),
              static_cast<unsigned long long>(
                  engine.stats().get("engine.packets")),
              static_cast<unsigned long long>(engine.eventsProcessed()));

  // Every explored state is one possible execution of its node; its
  // test case assigns every symbolic input (here: the drop decisions).
  for (const auto& state : engine.states()) {
    const bool isPinger = state->node() == 0;
    const auto counter = state->space.load(
        vm::kGlobalsObject,
        isPinger ? rime::kPingReplies : rime::kPingEchoed);
    std::printf("node %u, state %llu: %llu %s\n", state->node(),
                static_cast<unsigned long long>(state->id()),
                static_cast<unsigned long long>(counter->value()),
                isPinger ? "pong(s) received" : "ping(s) echoed");
    if (const auto testCase = generateTestCase(engine.solver(), *state))
      std::printf("%s", formatTestCase(*testCase).c_str());
  }
  return 0;
}
