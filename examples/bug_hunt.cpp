// Bug hunt: what SDE is *for* (paper §I: KleeNet "found subtle bugs in
// widely deployed sensornet software"). We arm the collect sink with two
// protocol assertions —
//
//   * "never observe the same sequence number twice"  (breaks under
//     packet duplication), and
//   * "never skip a sequence number"                   (breaks under
//     packet drops)
//
// — inject the matching symbolic failure models, and let symbolic
// distributed execution find the violating executions. Each failing
// state yields a concrete test case: the exact set of failure decisions
// that reproduces the bug deterministically.
//
// Usage: ./build/examples/bug_hunt
#include <cstdio>

#include "sde/explode.hpp"
#include "sde/testcase.hpp"
#include "trace/scenario.hpp"

namespace {

void hunt(const char* label, bool failOnDup, bool failOnLoss,
          bool injectDuplicates, bool injectDrops) {
  using namespace sde;
  std::printf("=== %s ===\n", label);

  trace::CollectScenarioConfig config;
  config.gridWidth = 3;
  config.gridHeight = 1;  // 3-node line: source 2 -> relay 1 -> sink 0
  config.simulationTime = 4000;
  config.mapper = MapperKind::kSds;
  config.symbolicDrops = injectDrops;
  config.symbolicDuplicates = injectDuplicates;
  config.app.failOnDuplicateSeqno = failOnDup;
  config.app.failOnLostSeqno = failOnLoss;

  trace::CollectScenario scenario(config);
  const auto result = scenario.run();
  std::printf("explored %llu states (%llu dscenario groups)\n",
              static_cast<unsigned long long>(result.states),
              static_cast<unsigned long long>(result.groups));

  std::size_t failures = 0;
  for (const auto& state : scenario.engine().states()) {
    if (state->status != vm::StateStatus::kFailed) continue;
    ++failures;
    if (failures > 3) continue;  // show the first three witnesses
    std::printf("\nBUG FOUND on node %u: %s\n", state->node(),
                state->failureMessage.c_str());
    // A local test case covers only this node's own symbolic inputs; the
    // *distributed* root cause (e.g. the relay's failure decision) lives
    // in the other members of a dscenario containing this state. Solve
    // them jointly for the full reproduction recipe.
    const auto dscenario =
        scenarioContaining(scenario.engine().mapper(), *state);
    if (!dscenario) continue;
    const auto cases =
        generateScenarioTestCases(scenario.engine().solver(), *dscenario);
    if (!cases) continue;
    for (const auto& testCase : *cases)
      if (!testCase.inputs.empty())
        std::printf("%s", formatTestCase(testCase).c_str());
  }
  if (failures == 0)
    std::printf("no assertion failures (as expected for this setup)\n");
  else
    std::printf("\n%zu failing state(s) in total.\n", failures);
  std::printf("\n");
}

}  // namespace

int main() {
  // Control: assertions armed but the network is ideal — no bug fires.
  hunt("control run: ideal network, assertions armed", true, true,
       /*injectDuplicates=*/false, /*injectDrops=*/false);

  // Packet duplication violates the at-most-once assumption at the sink.
  hunt("duplicate-delivery bug under the duplication failure model", true,
       false, /*injectDuplicates=*/true, /*injectDrops=*/false);

  // Packet drops violate the no-loss assumption at the sink.
  hunt("lost-packet bug under the drop failure model", false, true,
       /*injectDuplicates=*/false, /*injectDrops=*/true);
  return 0;
}
