// sde_checkpoint — inspect, validate and resume durable SDE runs.
//
//   sde_checkpoint inspect  <file.ckpt>   header of one engine checkpoint
//   sde_checkpoint inspect  <dir>         run manifest + per-job progress
//   sde_checkpoint validate <dir>         parse every file; nonzero exit on
//                                         any torn/foreign/version-mismatched
//                                         artifact
//   sde_checkpoint resume   <dir> [--workers N] [--testcases]
//                                         rebuild the fleet from the recorded
//                                         scenario spec and finish the run
//
// `resume` only works for runs whose manifest carries a scenario spec this
// build can decode (runs started through trace::runCollectPartitioned); for
// other runs, resume from the embedding program that owns the engine factory.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "snapshot/checkpoint.hpp"
#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sde;

int inspectCheckpointFile(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  const snapshot::CheckpointInfo info = snapshot::inspectCheckpointHeader(is);
  std::printf("checkpoint       %s\n", path.string().c_str());
  std::printf("format version   %u\n", info.version);
  std::printf("network nodes    %u\n", info.numNodes);
  std::printf("mapper           %s\n", info.mapper.c_str());
  std::printf("booted           %s\n", info.booted ? "yes" : "no");
  std::printf("states           %llu\n",
              static_cast<unsigned long long>(info.numStates));
  std::printf("virtual time     %llu\n",
              static_cast<unsigned long long>(info.virtualNow));
  std::printf("events processed %llu\n",
              static_cast<unsigned long long>(info.eventsProcessed));
  return 0;
}

// Shared by inspect (report) and validate (report + strictness): walks the
// run directory and returns the number of broken artifacts.
int surveyRunDir(const fs::path& dir, bool verbose) {
  const snapshot::RunManifest manifest = snapshot::readManifest(dir);
  if (verbose) {
    std::printf("run directory    %s\n", dir.string().c_str());
    std::printf("horizon          %llu\n",
                static_cast<unsigned long long>(manifest.horizon));
    std::printf("partition vars   %zu\n", manifest.plan.variables.size());
    std::printf("jobs             %zu\n", manifest.plan.jobs.size());
    std::printf("scenario spec    %s\n", manifest.scenarioSpec.empty()
                                             ? "<none>"
                                             : manifest.scenarioSpec.c_str());
    std::printf("\n");
  }

  int broken = 0;
  std::size_t done = 0, suspended = 0, pending = 0;
  for (const PartitionJob& job : manifest.plan.jobs) {
    const fs::path donePath = snapshot::jobDonePath(dir, job.id);
    const fs::path ckptPath = snapshot::jobCheckpointPath(dir, job.id);
    std::string status;
    if (fs::exists(donePath)) {
      try {
        const JobResult result = snapshot::readJobResultFile(donePath);
        status = "done (" + std::to_string(result.states) + " states, " +
                 std::to_string(result.scenariosOwned) + " owned scenarios)";
        ++done;
      } catch (const snapshot::SnapshotError& e) {
        status = std::string("BROKEN done file: ") + e.what();
        ++broken;
      }
    } else if (fs::exists(ckptPath)) {
      try {
        std::ifstream is(ckptPath, std::ios::binary);
        const snapshot::CheckpointInfo info =
            snapshot::inspectCheckpointHeader(is);
        status = "suspended (" + std::to_string(info.numStates) +
                 " states at virtual time " + std::to_string(info.virtualNow) +
                 ")";
        ++suspended;
      } catch (const snapshot::SnapshotError& e) {
        status = std::string("BROKEN checkpoint: ") + e.what();
        ++broken;
      }
    } else {
      status = "pending (no checkpoint yet)";
      ++pending;
    }
    if (verbose) std::printf("job %-4u %s\n", job.id, status.c_str());
  }
  if (verbose) {
    std::printf("\n%zu done, %zu suspended, %zu pending", done, suspended,
                pending);
    if (broken != 0) std::printf(", %d BROKEN", broken);
    std::printf("\n");
  }
  return broken;
}

int resumeRun(const fs::path& dir, unsigned workers, bool testcases) {
  const snapshot::RunManifest manifest = snapshot::readManifest(dir);
  const auto decoded =
      trace::decodeCollectScenarioSpec(manifest.scenarioSpec);
  if (!decoded) {
    std::fprintf(stderr,
                 "manifest has no decodable scenario spec (\"%s\"); resume "
                 "this run from the program that started it\n",
                 manifest.scenarioSpec.c_str());
    return 1;
  }
  ParallelConfig parallel;
  parallel.workers = workers;
  parallel.horizon = manifest.horizon;
  parallel.collectTestcases = testcases;
  parallel.checkpointDir = dir.string();
  parallel.resume = true;
  const trace::PartitionedCollectResult outcome = trace::runCollectPartitioned(
      decoded->config, parallel, decoded->numPartitionVariables);
  std::printf("outcome            %s\n",
              std::string(runOutcomeName(outcome.result.outcome)).c_str());
  std::printf("total states       %llu\n",
              static_cast<unsigned long long>(outcome.result.totalStates));
  std::printf("total events       %llu\n",
              static_cast<unsigned long long>(outcome.result.totalEvents));
  std::printf(
      "owned scenarios    %llu\n",
      static_cast<unsigned long long>(outcome.result.totalScenariosOwned));
  std::printf("fingerprint digest %016llx\n",
              static_cast<unsigned long long>(
                  outcome.result.fingerprintDigest()));
  return outcome.result.outcome == RunOutcome::kCompleted ? 0 : 2;
}

int usage() {
  std::fprintf(stderr,
               "usage: sde_checkpoint inspect  <file.ckpt | dir>\n"
               "       sde_checkpoint validate <dir>\n"
               "       sde_checkpoint resume   <dir> [--workers N] "
               "[--testcases]\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const fs::path target = argv[2];

  try {
    if (command == "inspect") {
      if (fs::is_directory(target)) return surveyRunDir(target, true) ? 1 : 0;
      return inspectCheckpointFile(target);
    }
    if (command == "validate") {
      const int broken = surveyRunDir(target, false);
      if (broken != 0) {
        std::fprintf(stderr, "%d broken artifact(s) in %s\n", broken,
                     target.string().c_str());
        return 1;
      }
      std::printf("ok: manifest and all job files of %s parse cleanly\n",
                  target.string().c_str());
      return 0;
    }
    if (command == "resume") {
      unsigned workers = 1;
      bool testcases = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
          workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--testcases") == 0)
          testcases = true;
        else
          return usage();
      }
      return resumeRun(target, workers, testcases);
    }
  } catch (const sde::snapshot::SnapshotError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
