// sde_fleet — launch, inspect and resume multi-process fleet runs.
//
//   sde_fleet launch <dir> [--processes N] [--vars B] [--nodes W*H]
//                          [--time T] [--mapper cow|sds|cob]
//                          [--no-shm-cache] [--shm-name /name]
//                          [--trace-dir D] [--testcases]
//                          [--merge] [--loop-summarize]
//                    starts a fresh fleet of the collect scenario with
//                    <dir> as the durable job queue and prints the
//                    merged summary + fingerprint digest
//   sde_fleet status <dir> [--json]
//                    per-job progress of the durable queue (done /
//                    suspended / pending), without running anything;
//                    --json emits one machine-readable object (the
//                    sde_serve status endpoint and scripts consume it)
//   sde_fleet resume <dir> [--processes N] [--no-shm-cache]
//                    rebuilds the fleet from the recorded scenario spec
//                    and finishes the run (completed jobs load from
//                    their .done files, suspended jobs continue from
//                    their checkpoints, the shm cache seeds from the
//                    shared_cache.bin sidecar)
//
// `resume` needs a manifest whose scenario spec this build can decode
// (runs started by `launch`, trace::runCollectFleet or
// trace::runCollectPartitioned); foreign runs resume from the program
// that owns the engine factory.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sde/fleet.hpp"
#include "sde/fleet_status.hpp"
#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sde;

struct Options {
  unsigned processes = 4;
  std::size_t vars = 2;
  std::uint32_t gridWidth = 5;
  std::uint32_t gridHeight = 5;
  std::uint64_t time = 5000;
  MapperKind mapper = MapperKind::kSds;
  bool shmCache = true;
  std::string shmName;
  std::string traceDir;
  bool testcases = false;
  bool merge = false;          // state merging at post-dominator joins
  bool loopSummarize = false;  // bounded loop summarization
};

bool parseCommon(int argc, char** argv, int first, Options& options) {
  for (int i = first; i < argc; ++i) {
    const auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--processes") == 0) {
      const char* v = needValue("--processes");
      if (v == nullptr) return false;
      options.processes = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--vars") == 0) {
      const char* v = needValue("--vars");
      if (v == nullptr) return false;
      options.vars = std::strtoul(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      const char* v = needValue("--nodes");
      if (v == nullptr) return false;
      const char* star = std::strchr(v, '*');
      if (star == nullptr) {
        std::fprintf(stderr, "--nodes wants W*H (e.g. 5*5)\n");
        return false;
      }
      options.gridWidth =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      options.gridHeight =
          static_cast<std::uint32_t>(std::strtoul(star + 1, nullptr, 10));
    } else if (std::strcmp(argv[i], "--time") == 0) {
      const char* v = needValue("--time");
      if (v == nullptr) return false;
      options.time = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--mapper") == 0) {
      const char* v = needValue("--mapper");
      if (v == nullptr) return false;
      if (std::strcmp(v, "cow") == 0)
        options.mapper = MapperKind::kCow;
      else if (std::strcmp(v, "sds") == 0)
        options.mapper = MapperKind::kSds;
      else if (std::strcmp(v, "cob") == 0)
        options.mapper = MapperKind::kCob;
      else {
        std::fprintf(stderr, "unknown mapper %s\n", v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--no-shm-cache") == 0) {
      options.shmCache = false;
    } else if (std::strcmp(argv[i], "--shm-name") == 0) {
      const char* v = needValue("--shm-name");
      if (v == nullptr) return false;
      options.shmName = v;
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      const char* v = needValue("--trace-dir");
      if (v == nullptr) return false;
      options.traceDir = v;
    } else if (std::strcmp(argv[i], "--testcases") == 0) {
      options.testcases = true;
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      options.merge = true;
    } else if (std::strcmp(argv[i], "--loop-summarize") == 0) {
      options.loopSummarize = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

void printFleetResult(const FleetResult& fleet) {
  const ParallelResult& result = fleet.result;
  std::printf("outcome            %s\n",
              std::string(runOutcomeName(result.outcome)).c_str());
  std::printf("processes          %u\n", fleet.processes);
  std::printf("total states       %llu\n",
              static_cast<unsigned long long>(result.totalStates));
  std::printf("total events       %llu\n",
              static_cast<unsigned long long>(result.totalEvents));
  std::printf("owned scenarios    %llu\n",
              static_cast<unsigned long long>(result.totalScenariosOwned));
  std::printf("steals             %llu\n",
              static_cast<unsigned long long>(fleet.steals));
  std::printf("worker deaths      %llu (respawns %llu)\n",
              static_cast<unsigned long long>(fleet.workerDeaths),
              static_cast<unsigned long long>(fleet.respawns));
  std::printf("shm cache          entries %llu, hits %llu, misses %llu%s\n",
              static_cast<unsigned long long>(fleet.shmEntries),
              static_cast<unsigned long long>(fleet.shmHits),
              static_cast<unsigned long long>(fleet.shmMisses),
              fleet.shmDegraded ? " (degraded: torn segment discarded)" : "");
  std::printf("wall seconds       %.3f\n", result.wallSeconds);
  std::printf("fingerprint digest %016llx\n",
              static_cast<unsigned long long>(result.fingerprintDigest()));
  if (!result.testcases.empty()) {
    // FNV-1a over the sorted-distinct union; the merge verify stage
    // compares this line between a merged and an unmerged launch.
    std::uint64_t digest = 14695981039346656037ull;
    for (const std::string& testcase : result.testcases) {
      for (const char c : testcase) {
        digest ^= static_cast<unsigned char>(c);
        digest *= 1099511628211ull;
      }
      digest *= 1099511628211ull;  // record separator
    }
    std::printf("testcases          %zu\n", result.testcases.size());
    std::printf("testcase digest    %016llx\n",
                static_cast<unsigned long long>(digest));
  }
}

int launch(const fs::path& dir, const Options& options, bool resume) {
  trace::CollectScenarioConfig scenario;
  scenario.gridWidth = options.gridWidth;
  scenario.gridHeight = options.gridHeight;
  scenario.simulationTime = options.time;
  scenario.mapper = options.mapper;
  scenario.engine.mergeStates = options.merge;
  scenario.engine.loopSummarize = options.loopSummarize;

  std::size_t vars = options.vars;
  if (resume) {
    // The run directory is authoritative: rebuild the identical fleet
    // from the recorded spec.
    const snapshot::RunManifest manifest = snapshot::readManifest(dir);
    const auto decoded = trace::decodeCollectScenarioSpec(manifest.scenarioSpec);
    if (!decoded) {
      std::fprintf(stderr,
                   "manifest has no decodable scenario spec (\"%s\"); resume "
                   "this run from the program that started it\n",
                   manifest.scenarioSpec.c_str());
      return 1;
    }
    scenario = decoded->config;
    vars = decoded->numPartitionVariables;
  }

  FleetConfig fleet;
  fleet.processes = options.processes;
  fleet.checkpointDir = dir.string();
  fleet.resume = resume;
  fleet.shmQueryCache = options.shmCache;
  fleet.shmName = options.shmName;
  fleet.traceDir = options.traceDir;
  fleet.collectTestcases = options.testcases;

  // SIGTERM means "checkpoint and yield", matching what a managing
  // daemon (sde_serve) sends to preempt the run.
  fleet.installSigtermSuspend = true;

  const FleetResult result = trace::runCollectFleet(scenario, fleet, vars);
  if (result.suspended) {
    std::printf("suspended          %u jobs done, %u checkpointed mid-run\n",
                result.jobsDone, result.jobsSuspendedMidRun);
    std::printf("resume with        sde_fleet resume %s\n",
                dir.string().c_str());
    return 3;
  }
  printFleetResult(result);
  return result.result.outcome == RunOutcome::kCompleted ? 0 : 2;
}

int statusText(const FleetRunStatus& status) {
  std::printf("run directory    %s\n", status.dir.string().c_str());
  std::printf("horizon          %llu\n",
              static_cast<unsigned long long>(status.manifest.horizon));
  std::printf("jobs             %zu\n", status.manifest.plan.jobs.size());
  std::printf("scenario spec    %s\n\n",
              status.manifest.scenarioSpec.empty()
                  ? "<none>"
                  : status.manifest.scenarioSpec.c_str());
  for (const FleetJobStatus& row : status.jobs) {
    std::string state;
    if (row.state == FleetJobState::kDone) {
      state = "done      (" + std::to_string(row.states) + " states)";
    } else if (row.state == FleetJobState::kSuspended) {
      state = "suspended (" + std::to_string(row.states) + " states at t=" +
              std::to_string(row.virtualNow) + ")";
    } else if (row.state == FleetJobState::kBroken) {
      state = "BROKEN file";
    } else {
      state = "pending";
    }
    std::printf("job %-4u %s\n", row.id, state.c_str());
  }
  std::printf("\n%zu done, %zu suspended, %zu pending", status.done,
              status.suspended, status.pending);
  if (status.broken != 0) std::printf(", %zu BROKEN", status.broken);
  std::printf("\n");
  if (status.hasMetrics) {
    std::printf("\nmerged metrics (metrics.sde):\n");
    for (const auto& [name, point] : status.metrics.points) {
      if (point.kind == sde::obs::MetricKind::kHistogram) {
        std::printf("  %-40s count %llu p50 %llu p99 %llu\n", name.c_str(),
                    static_cast<unsigned long long>(point.count),
                    static_cast<unsigned long long>(
                        sde::obs::histogramQuantile(point, 0.5)),
                    static_cast<unsigned long long>(
                        sde::obs::histogramQuantile(point, 0.99)));
      } else {
        std::printf("  %-40s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(point.value));
      }
    }
  }
  return status.broken == 0 ? 0 : 1;
}

int statusCommand(const fs::path& dir, bool json) {
  const FleetRunStatus status = inspectFleetRun(dir);
  if (json) {
    std::printf("%s\n", fleetStatusJson(status).c_str());
    return status.broken == 0 ? 0 : 1;
  }
  return statusText(status);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sde_fleet launch <dir> [--processes N] [--vars B]\n"
      "                 [--nodes W*H] [--time T] [--mapper cow|sds|cob]\n"
      "                 [--no-shm-cache] [--shm-name /name]\n"
      "                 [--trace-dir D] [--testcases]\n"
      "       sde_fleet status <dir> [--json]\n"
      "       sde_fleet resume <dir> [--processes N] [--no-shm-cache]\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const fs::path dir = argv[2];
  Options options;
  try {
    if (command == "launch") {
      if (!parseCommon(argc, argv, 3, options)) return usage();
      return launch(dir, options, /*resume=*/false);
    }
    if (command == "resume") {
      if (!parseCommon(argc, argv, 3, options)) return usage();
      return launch(dir, options, /*resume=*/true);
    }
    if (command == "status") {
      bool json = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
          json = true;
        } else {
          std::fprintf(stderr, "unknown flag %s\n", argv[i]);
          return usage();
        }
      }
      return statusCommand(dir, json);
    }
  } catch (const sde::snapshot::SnapshotError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const sde::FleetError& e) {
    std::fprintf(stderr, "fleet error: %s\n", e.what());
    return 1;
  }
  return usage();
}
