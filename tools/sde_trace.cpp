// sde_trace — inspect, validate, summarize, diff, merge and export the
// structured event traces the engine emits (obs/ subsystem).
//
//   sde_trace inspect       <file.trc>          header + event/phase totals
//   sde_trace validate      <file.trc>...       structural validation; nonzero
//                                               exit on any violation
//   sde_trace summarize     <file.trc> [--top K]
//                                               fork attribution, per-node
//                                               forks, top-K forking
//                                               transmissions, solver + phase
//                                               breakdown
//   sde_trace diff          <a.trc> <b.trc>     side-by-side summary deltas
//                                               (e.g. SDS vs COW of one
//                                               scenario); nonzero exit when
//                                               the traces differ
//   sde_trace merge         <out.trc> <in.trc>...
//                                               deterministic multi-stream
//                                               merge (virtual-time order)
//   sde_trace export-chrome <in.trc> <out.json> chrome://tracing / Perfetto
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_export.hpp"
#include "obs/summary.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_merge.hpp"

namespace {

using namespace sde;

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

void printHeader(const obs::TraceFile& trace) {
  std::printf("format version   %u\n", obs::kTraceVersion);
  std::printf("network nodes    %u\n", trace.header.numNodes);
  std::printf("stream           %u%s\n", trace.header.stream,
              trace.header.merged ? " (merged)" : "");
  std::printf("mapper           %s\n", trace.header.mapper.empty()
                                           ? "<unset>"
                                           : trace.header.mapper.c_str());
  std::printf("scenario         %s\n", trace.header.scenario.empty()
                                           ? "<unset>"
                                           : trace.header.scenario.c_str());
  std::printf("events           %zu\n", trace.events.size());
}

int cmdInspect(const std::string& path) {
  const obs::TraceFile trace = obs::readTraceFile(path);
  std::printf("trace            %s\n", path.c_str());
  printHeader(trace);
  const obs::TraceSummary summary = obs::summarizeTrace(trace);
  for (std::uint8_t k = 1; k < obs::kNumTraceEventKinds; ++k) {
    const auto kind = static_cast<obs::TraceEventKind>(k);
    if (summary.count(kind) == 0) continue;
    std::printf("  %-22s %llu\n",
                std::string(obs::traceEventKindName(kind)).c_str(),
                ull(summary.count(kind)));
  }
  if (!trace.profile.empty()) {
    std::printf("\nphase profile (self-time)\n%s",
                trace.profile.report().c_str());
  }
  return 0;
}

int cmdValidate(const std::vector<std::string>& paths) {
  int broken = 0;
  for (const std::string& path : paths) {
    try {
      const obs::TraceFile trace = obs::readTraceFile(path);
      const std::vector<std::string> violations = obs::validateTrace(trace);
      if (violations.empty()) {
        std::printf("%s: OK (%zu events)\n", path.c_str(),
                    trace.events.size());
        continue;
      }
      ++broken;
      std::printf("%s: %zu violation(s)\n", path.c_str(), violations.size());
      for (const std::string& violation : violations)
        std::printf("  %s\n", violation.c_str());
    } catch (const obs::TraceError& e) {
      ++broken;
      std::printf("%s: UNREADABLE: %s\n", path.c_str(), e.what());
    }
  }
  return broken == 0 ? 0 : 1;
}

void printSummary(const obs::TraceSummary& summary, std::size_t topK) {
  std::printf("\nstate lifecycle\n");
  std::printf("  initial states         %llu\n",
              ull(summary.count(obs::TraceEventKind::kStateCreate)));
  std::printf("  forks total            %llu\n", ull(summary.forksTotal()));
  std::printf("    branch forks         %llu\n", ull(summary.forksBranch));
  std::printf("    failure forks        %llu\n", ull(summary.forksFailure));
  std::printf("    mapping forks        %llu\n", ull(summary.forksMapping));
  std::printf("  terminated             %llu\n",
              ull(summary.count(obs::TraceEventKind::kStateTerminate)));

  // Merge attribution: forks create states, merges hand them back. The
  // reclaimed line is the credit side of the fork ledger above.
  const std::uint64_t merges = summary.count(obs::TraceEventKind::kStateMerge);
  const std::uint64_t loopSummaries =
      summary.count(obs::TraceEventKind::kLoopSummary);
  if (merges + loopSummaries > 0) {
    std::printf("\nstate merging\n");
    std::printf("  merges                 %llu\n", ull(merges));
    std::printf("  states reclaimed       %llu (%.1f%% of %llu forks)\n",
                ull(summary.mergeRemovedStates),
                summary.forksTotal() > 0
                    ? 100.0 * static_cast<double>(summary.mergeRemovedStates) /
                          static_cast<double>(summary.forksTotal())
                    : 0.0,
                ull(summary.forksTotal()));
    std::printf("  loop summaries         %llu\n", ull(loopSummaries));
    if (!summary.mergesByNode.empty()) {
      std::printf("  merges by node        ");
      for (const auto& [node, count] : summary.mergesByNode)
        std::printf(" n%u:%llu", node, ull(count));
      std::printf("\n");
    }
  }

  std::printf("\nnetwork\n");
  std::printf("  transmissions          %llu\n",
              ull(summary.count(obs::TraceEventKind::kPacketTransmit)));
  std::printf("  deliveries             %llu\n",
              ull(summary.count(obs::TraceEventKind::kPacketDeliver)));

  std::printf("\nmapping layer\n");
  std::printf("  targets forked         %llu\n", ull(summary.targetsForked));
  std::printf("  bystanders forked      %llu\n",
              ull(summary.bystandersForked));
  std::printf("  scenario copies (COB)  %llu\n", ull(summary.scenarioCopies));
  std::printf("  group forks            %llu\n", ull(summary.groupForks));

  if (summary.solverQueries > 0) {
    std::printf("\nsolver queries by answering layer\n");
    std::printf("  total                  %llu\n", ull(summary.solverQueries));
    std::printf("  constant refuted       %llu\n", ull(summary.solverConstant));
    std::printf("  cache hits             %llu\n",
                ull(summary.solverCacheHits));
    std::printf("  model reuse            %llu\n",
                ull(summary.solverModelReuse));
    std::printf("  subsumption            %llu\n",
                ull(summary.solverSubsumption));
    std::printf("  shared cache           %llu\n",
                ull(summary.solverSharedCache));
    std::printf("  interval refuted       %llu\n",
                ull(summary.solverIntervalRefuted));
    std::printf("  enumerated             %llu\n",
                ull(summary.solverEnumerated));
  }

  if (summary.count(obs::TraceEventKind::kCheckpointSuspend) +
          summary.count(obs::TraceEventKind::kCheckpointRestore) >
      0) {
    std::printf("\ncheckpointing\n");
    std::printf("  suspends               %llu\n",
                ull(summary.count(obs::TraceEventKind::kCheckpointSuspend)));
    std::printf("  restores               %llu\n",
                ull(summary.count(obs::TraceEventKind::kCheckpointRestore)));
  }

  if (!summary.forksByNode.empty()) {
    std::printf("\nforks by node\n");
    for (const auto& [node, forks] : summary.forksByNode)
      std::printf("  node %-4u %llu\n", node, ull(forks));
  }

  if (!summary.forkingTransmissions.empty()) {
    std::printf("\ntop forking transmissions\n");
    std::printf("  %-8s %-6s %-6s %-10s %-8s %s\n", "packet", "src", "dst",
                "time", "targets", "bystanders");
    std::size_t shown = 0;
    for (const obs::TransmissionForks& tx : summary.forkingTransmissions) {
      if (shown++ >= topK) break;
      std::printf("  %-8llu %-6u %-6u %-10llu %-8llu %llu\n", ull(tx.packetId),
                  tx.src, tx.dst, ull(tx.time), ull(tx.targetsForked),
                  ull(tx.bystandersForked));
    }
    if (summary.forkingTransmissions.size() > topK)
      std::printf("  ... %zu more\n",
                  summary.forkingTransmissions.size() - topK);
  }
}

int cmdSummarize(const std::string& path, std::size_t topK) {
  const obs::TraceFile trace = obs::readTraceFile(path);
  std::printf("trace            %s\n", path.c_str());
  printHeader(trace);
  printSummary(obs::summarizeTrace(trace), topK);
  if (!trace.profile.empty())
    std::printf("\nphase profile (self-time)\n%s",
                trace.profile.report().c_str());
  return 0;
}

int cmdDiff(const std::string& pathA, const std::string& pathB) {
  const obs::TraceFile traceA = obs::readTraceFile(pathA);
  const obs::TraceFile traceB = obs::readTraceFile(pathB);
  const obs::TraceSummary a = obs::summarizeTrace(traceA);
  const obs::TraceSummary b = obs::summarizeTrace(traceB);

  std::printf("A: %s (%s)\n", pathA.c_str(),
              traceA.header.mapper.empty() ? "?"
                                           : traceA.header.mapper.c_str());
  std::printf("B: %s (%s)\n\n", pathB.c_str(),
              traceB.header.mapper.empty() ? "?"
                                           : traceB.header.mapper.c_str());

  int differences = 0;
  const auto row = [&](const char* label, std::uint64_t va,
                       std::uint64_t vb) {
    const long long delta =
        static_cast<long long>(vb) - static_cast<long long>(va);
    if (delta != 0) ++differences;
    std::printf("  %-24s %12llu %12llu %+12lld\n", label, ull(va), ull(vb),
                delta);
  };
  std::printf("  %-24s %12s %12s %12s\n", "metric", "A", "B", "B-A");
  row("events", traceA.events.size(), traceB.events.size());
  for (std::uint8_t k = 1; k < obs::kNumTraceEventKinds; ++k) {
    const auto kind = static_cast<obs::TraceEventKind>(k);
    if (a.count(kind) == 0 && b.count(kind) == 0) continue;
    row(std::string(obs::traceEventKindName(kind)).c_str(), a.count(kind),
        b.count(kind));
  }
  row("branch forks", a.forksBranch, b.forksBranch);
  row("failure forks", a.forksFailure, b.forksFailure);
  row("mapping forks", a.forksMapping, b.forksMapping);
  row("targets forked", a.targetsForked, b.targetsForked);
  row("bystanders forked", a.bystandersForked, b.bystandersForked);
  row("scenario copies", a.scenarioCopies, b.scenarioCopies);
  row("solver queries", a.solverQueries, b.solverQueries);
  row("solver cache hits", a.solverCacheHits, b.solverCacheHits);
  row("solver subsumption", a.solverSubsumption, b.solverSubsumption);
  row("solver shared cache", a.solverSharedCache, b.solverSharedCache);
  row("last virtual time", a.lastTime, b.lastTime);

  std::printf("\nforks by node (A vs B)\n");
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> byNode;
  for (const auto& [node, forks] : a.forksByNode) byNode[node].first = forks;
  for (const auto& [node, forks] : b.forksByNode) byNode[node].second = forks;
  for (const auto& [node, forks] : byNode) {
    if (forks.first != forks.second) ++differences;
    std::printf("  node %-4u %12llu %12llu %+12lld\n", node, ull(forks.first),
                ull(forks.second),
                static_cast<long long>(forks.second) -
                    static_cast<long long>(forks.first));
  }

  std::printf("\n%d differing metric(s)\n", differences);
  return differences == 0 ? 0 : 1;
}

int cmdMerge(const std::string& outPath,
             const std::vector<std::string>& inputs) {
  obs::mergeTraceFiles(inputs, outPath);
  const obs::TraceFile merged = obs::readTraceFile(outPath);
  std::printf("merged %zu trace(s) -> %s (%zu events)\n", inputs.size(),
              outPath.c_str(), merged.events.size());
  return 0;
}

int cmdExportChrome(const std::string& inPath, const std::string& outPath) {
  const obs::TraceFile trace = obs::readTraceFile(inPath);
  obs::exportChromeTraceFile(outPath, trace);
  std::printf("exported %zu events -> %s\n", trace.events.size(),
              outPath.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sde_trace inspect       <file.trc>\n"
      "  sde_trace validate      <file.trc>...\n"
      "  sde_trace summarize     <file.trc> [--top K]\n"
      "  sde_trace diff          <a.trc> <b.trc>\n"
      "  sde_trace merge         <out.trc> <in.trc>...\n"
      "  sde_trace export-chrome <in.trc> <out.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "inspect" && args.size() == 1) return cmdInspect(args[0]);
    if (command == "validate" && !args.empty()) return cmdValidate(args);
    if (command == "summarize" && !args.empty()) {
      std::size_t topK = 10;
      std::vector<std::string> rest;
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--top" && i + 1 < args.size())
          topK = static_cast<std::size_t>(std::stoul(args[++i]));
        else
          rest.push_back(args[i]);
      }
      if (rest.size() != 1) return usage();
      return cmdSummarize(rest[0], topK);
    }
    if (command == "diff" && args.size() == 2) return cmdDiff(args[0], args[1]);
    if (command == "merge" && args.size() >= 2)
      return cmdMerge(args[0], {args.begin() + 1, args.end()});
    if (command == "export-chrome" && args.size() == 2)
      return cmdExportChrome(args[0], args[1]);
  } catch (const obs::TraceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
