// sde_submit — client for the sde_serve exploration service.
//
//   sde_submit submit <socket> [--tenant T] [--priority P] [--processes N]
//                     [--vars B] [--nodes W*H] [--time T]
//                     [--mapper cow|sds|cob] [--testcases] [--watch]
//                     prints the accepted job id (and with --watch,
//                     streams progress until the job finishes, exiting
//                     nonzero unless it completed)
//   sde_submit status <socket> [job]      one line per job
//   sde_submit watch <socket> <job>       stream progress to completion
//   sde_submit cancel <socket> <job>
//   sde_submit artifacts <socket> <job>   list published artifact names
//   sde_submit fetch <socket> <job> <name> [--out FILE]   (default stdout)
//   sde_submit metrics <socket> [job]     Prometheus text exposition
//                     (job omitted or 0: whole service; a done job's
//                     numbers equal its post-run stats exactly)
//   sde_submit shutdown <socket>          graceful daemon stop
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "serve/client.hpp"
#include "trace/scenario.hpp"

namespace {

using namespace sde;

int usage() {
  std::fprintf(
      stderr,
      "usage: sde_submit submit <socket> [--tenant T] [--priority P]\n"
      "                  [--processes N] [--vars B] [--nodes W*H] [--time T]\n"
      "                  [--mapper cow|sds|cob] [--testcases] [--watch]\n"
      "       sde_submit status <socket> [job]\n"
      "       sde_submit watch <socket> <job>\n"
      "       sde_submit cancel <socket> <job>\n"
      "       sde_submit artifacts <socket> <job>\n"
      "       sde_submit fetch <socket> <job> <name> [--out FILE]\n"
      "       sde_submit metrics <socket> [job]\n"
      "       sde_submit shutdown <socket>\n");
  return 2;
}

void printStatus(const serve::JobStatus& status) {
  std::printf("job %llu tenant=%s prio=%u procs=%u state=%s parts=%u/%u "
              "events=%llu states=%llu",
              static_cast<unsigned long long>(status.jobId),
              status.tenant.c_str(), status.priority, status.processes,
              std::string(serve::jobStateName(status.state)).c_str(),
              status.partsDone, status.partsTotal,
              static_cast<unsigned long long>(status.eventsSeen),
              static_cast<unsigned long long>(status.statesSeen));
  if (status.digest != 0)
    std::printf(" digest=%llu",
                static_cast<unsigned long long>(status.digest));
  if (!status.error.empty()) std::printf(" error=%s", status.error.c_str());
  std::printf("\n");
}

int watchJob(serve::Client& client, std::uint64_t jobId) {
  std::uint32_t lastParts = ~0u;
  const serve::JobStatus final_ =
      client.watch(jobId, [&](const serve::JobStatus& status) {
        if (status.partsDone != lastParts) {
          lastParts = status.partsDone;
          printStatus(status);
          std::fflush(stdout);
        }
      });
  printStatus(final_);
  return final_.state == serve::JobState::kDone ? 0 : 1;
}

int submitCommand(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string socket = argv[2];
  trace::CollectScenarioConfig scenario;
  scenario.gridWidth = 5;
  scenario.gridHeight = 5;
  scenario.simulationTime = 5000;
  std::size_t vars = 2;
  serve::SubmitRequest request;
  request.tenant = "default";
  bool watch = false;
  for (int i = 3; i < argc; ++i) {
    const auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tenant") == 0) {
      const char* value = needValue("--tenant");
      if (value == nullptr) return 2;
      request.tenant = value;
    } else if (std::strcmp(argv[i], "--priority") == 0) {
      const char* value = needValue("--priority");
      if (value == nullptr) return 2;
      request.priority =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--processes") == 0) {
      const char* value = needValue("--processes");
      if (value == nullptr) return 2;
      request.processes =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--vars") == 0) {
      const char* value = needValue("--vars");
      if (value == nullptr) return 2;
      vars = std::strtoul(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      const char* value = needValue("--nodes");
      if (value == nullptr) return 2;
      unsigned w = 0;
      unsigned h = 0;
      if (std::sscanf(value, "%u*%u", &w, &h) != 2 || w == 0 || h == 0) {
        std::fprintf(stderr, "bad --nodes (want W*H)\n");
        return 2;
      }
      scenario.gridWidth = w;
      scenario.gridHeight = h;
    } else if (std::strcmp(argv[i], "--time") == 0) {
      const char* value = needValue("--time");
      if (value == nullptr) return 2;
      scenario.simulationTime = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--mapper") == 0) {
      const char* value = needValue("--mapper");
      if (value == nullptr) return 2;
      if (std::strcmp(value, "cow") == 0) {
        scenario.mapper = MapperKind::kCow;
      } else if (std::strcmp(value, "sds") == 0) {
        scenario.mapper = MapperKind::kSds;
      } else if (std::strcmp(value, "cob") == 0) {
        scenario.mapper = MapperKind::kCob;
      } else {
        std::fprintf(stderr, "unknown mapper %s\n", value);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--testcases") == 0) {
      request.collectTestcases = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  request.scenarioSpec = trace::encodeCollectScenarioSpec(scenario, vars);

  serve::Client client(socket);
  const std::uint64_t jobId = client.submit(request);
  std::printf("job %llu\n", static_cast<unsigned long long>(jobId));
  std::fflush(stdout);
  if (!watch) return 0;
  return watchJob(client, jobId);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string verb = argv[1];
  try {
    if (verb == "submit") return submitCommand(argc, argv);
    const std::string socket = argv[2];
    serve::Client client(socket);
    if (verb == "status") {
      const std::uint64_t jobId =
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
      for (const serve::JobStatus& status : client.status(jobId))
        printStatus(status);
      return 0;
    }
    if (verb == "watch" && argc > 3)
      return watchJob(client, std::strtoull(argv[3], nullptr, 10));
    if (verb == "cancel" && argc > 3) {
      const serve::JobState state =
          client.cancel(std::strtoull(argv[3], nullptr, 10));
      std::printf("%s\n", std::string(serve::jobStateName(state)).c_str());
      return 0;
    }
    if (verb == "artifacts" && argc > 3) {
      for (const std::string& name :
           client.listArtifacts(std::strtoull(argv[3], nullptr, 10)))
        std::printf("%s\n", name.c_str());
      return 0;
    }
    if (verb == "fetch" && argc > 4) {
      const std::string bytes =
          client.fetch(std::strtoull(argv[3], nullptr, 10), argv[4]);
      if (argc > 6 && std::strcmp(argv[5], "--out") == 0) {
        std::ofstream os(argv[6], std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!os.good()) {
          std::fprintf(stderr, "cannot write %s\n", argv[6]);
          return 1;
        }
      } else {
        std::cout.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
      }
      return 0;
    }
    if (verb == "metrics") {
      const std::uint64_t jobId =
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
      const serve::MetricsReply reply = client.metrics(jobId);
      std::fputs(reply.prometheus.c_str(), stdout);
      return 0;
    }
    if (verb == "shutdown") {
      client.shutdownDaemon();
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sde_submit: %s\n", e.what());
    return 1;
  }
  return usage();
}
