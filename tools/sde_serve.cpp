// sde_serve — the multi-tenant exploration service daemon.
//
//   sde_serve <root> [--socket PATH] [--slots N] [--retain K]
//                    [--tenant name:weight[:maxslots]]... [--poll-ms M]
//
// Accepts scenario jobs over a Unix socket (see sde_submit), schedules
// them across fleet worker slots with per-tenant weighted fair queueing
// and priority preemption, streams live progress, and serves finished
// artifacts from the durable results store under <root>/jobs.
//
// The daemon is crash-safe by construction: job state lives in the
// directory tree (spec.sde, fleet queue, result/), each piece written
// atomically, so SIGKILL + restart recovers every accepted job. SIGTERM
// shuts down gracefully — running fleets suspend to checkpoints first.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/daemon.hpp"

namespace {

using namespace sde;

int usage() {
  std::fprintf(
      stderr,
      "usage: sde_serve <root> [--socket PATH] [--slots N] [--retain K]\n"
      "                 [--tenant name:weight[:maxslots]]... [--poll-ms M]\n");
  return 2;
}

// "name:weight[:maxslots]" -> policy entry; false on parse failure.
bool parseTenant(const std::string& arg, serve::ServeConfig& config) {
  const std::size_t firstColon = arg.find(':');
  if (firstColon == std::string::npos || firstColon == 0) return false;
  const std::string name = arg.substr(0, firstColon);
  serve::TenantPolicy policy;
  try {
    const std::size_t secondColon = arg.find(':', firstColon + 1);
    policy.weight = std::stod(arg.substr(firstColon + 1));
    if (secondColon != std::string::npos)
      policy.maxSlots =
          static_cast<unsigned>(std::stoul(arg.substr(secondColon + 1)));
  } catch (...) {
    return false;
  }
  if (policy.weight <= 0) return false;
  config.tenants[name] = policy;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  serve::ServeConfig config;
  config.root = argv[1];
  for (int i = 2; i < argc; ++i) {
    const auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* value = needValue("--socket");
      if (value == nullptr) return 2;
      config.socketPath = value;
    } else if (std::strcmp(argv[i], "--slots") == 0) {
      const char* value = needValue("--slots");
      if (value == nullptr) return 2;
      config.slots = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
      if (config.slots == 0) {
        std::fprintf(stderr, "--slots must be positive\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--retain") == 0) {
      const char* value = needValue("--retain");
      if (value == nullptr) return 2;
      config.retainJobs = std::strtoul(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--poll-ms") == 0) {
      const char* value = needValue("--poll-ms");
      if (value == nullptr) return 2;
      config.pollMs = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
      if (config.pollMs == 0) config.pollMs = 1;
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      const char* value = needValue("--tenant");
      if (value == nullptr) return 2;
      if (!parseTenant(value, config)) {
        std::fprintf(stderr, "bad --tenant spec \"%s\"\n", value);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }

  try {
    serve::Daemon daemon(config);
    std::printf("sde_serve: listening on %s (%u slots)\n",
                daemon.socketPath().c_str(), config.slots);
    std::fflush(stdout);
    daemon.run();
    std::printf("sde_serve: stopped\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sde_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
