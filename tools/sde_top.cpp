// sde_top — live terminal view of an sde_serve exploration service.
//
//   sde_top <socket> [--interval MS] [--once]
//
// Polls StatusRequest + MetricsRequest(0) each round and renders
// tenants (slot occupancy, accumulated run slot-seconds, preemptions,
// queue-wait p50/p99), jobs (state, parts, live event/state counters
// and an events/s rate computed between polls), and the hottest
// engine/solver series (fork totals, per-layer solve latency p50/p99).
// --once prints a single frame without clearing the screen — that mode
// is what scripts and the verify smoke stage consume.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/client.hpp"

namespace {

using namespace sde;

struct TenantRow {
  std::uint64_t slotsInUse = 0;
  std::uint64_t runSlotMs = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t jobsSubmitted = 0;
  std::uint64_t queueWaitP50 = 0;
  std::uint64_t queueWaitP99 = 0;
};

// Splits "serve.tenant.<tenant>.<rest>" into its tenant and series
// parts; empty tenant when the name is not a tenant series.
bool splitTenantSeries(const std::string& name, std::string& tenant,
                       std::string& series) {
  constexpr std::string_view kPrefix = "serve.tenant.";
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::size_t dot = name.find('.', kPrefix.size());
  if (dot == std::string::npos) return false;
  tenant = name.substr(kPrefix.size(), dot - kPrefix.size());
  series = name.substr(dot + 1);
  return true;
}

void renderFrame(const std::vector<serve::JobStatus>& jobs,
                 const obs::MetricsSnapshot& snap,
                 const std::map<std::uint64_t, std::uint64_t>& lastEvents,
                 double intervalSeconds) {
  std::printf("sde_top — slots %llu/%llu, %llu jobs running\n",
              static_cast<unsigned long long>(snap.value("serve.slots_in_use")),
              static_cast<unsigned long long>(snap.value("serve.slots_total")),
              static_cast<unsigned long long>(snap.value("serve.jobs_running")));

  std::map<std::string, TenantRow> tenants;
  for (const auto& [name, point] : snap.points) {
    std::string tenant;
    std::string series;
    if (!splitTenantSeries(name, tenant, series)) continue;
    TenantRow& row = tenants[tenant];
    if (series == "slots_in_use") {
      row.slotsInUse = point.value;
    } else if (series == "run_slot_ms") {
      row.runSlotMs = point.value;
    } else if (series == "preemptions") {
      row.preemptions = point.value;
    } else if (series == "jobs_submitted") {
      row.jobsSubmitted = point.value;
    } else if (series == "queue_wait_ms") {
      row.queueWaitP50 = obs::histogramQuantile(point, 0.5);
      row.queueWaitP99 = obs::histogramQuantile(point, 0.99);
    }
  }
  if (!tenants.empty()) {
    std::printf("\n%-16s %6s %10s %8s %8s %10s %10s\n", "TENANT", "SLOTS",
                "RUN_SLOT_S", "SUBMITS", "PREEMPT", "QWAIT_P50", "QWAIT_P99");
    for (const auto& [tenant, row] : tenants)
      std::printf("%-16s %6llu %10.1f %8llu %8llu %8llums %8llums\n",
                  tenant.c_str(),
                  static_cast<unsigned long long>(row.slotsInUse),
                  static_cast<double>(row.runSlotMs) / 1000.0,
                  static_cast<unsigned long long>(row.jobsSubmitted),
                  static_cast<unsigned long long>(row.preemptions),
                  static_cast<unsigned long long>(row.queueWaitP50),
                  static_cast<unsigned long long>(row.queueWaitP99));
  }

  std::printf("\n%-6s %-12s %-10s %9s %12s %12s %10s\n", "JOB", "TENANT",
              "STATE", "PARTS", "EVENTS", "STATES", "EV/S");
  for (const serve::JobStatus& job : jobs) {
    double rate = 0;
    const auto last = lastEvents.find(job.jobId);
    if (last != lastEvents.end() && intervalSeconds > 0 &&
        job.eventsSeen >= last->second)
      rate = static_cast<double>(job.eventsSeen - last->second) /
             intervalSeconds;
    std::printf("%-6llu %-12s %-10s %5u/%-3u %12llu %12llu %10.0f\n",
                static_cast<unsigned long long>(job.jobId),
                job.tenant.c_str(),
                std::string(serve::jobStateName(job.state)).c_str(),
                job.partsDone, job.partsTotal,
                static_cast<unsigned long long>(job.eventsSeen),
                static_cast<unsigned long long>(job.statesSeen), rate);
  }

  // The engine/solver pulse across every running fleet, live from the
  // shm planes the daemon merged into this snapshot.
  const std::uint64_t forks = snap.value("engine.forks_total");
  const std::uint64_t events = snap.value("engine.events");
  if (forks != 0 || events != 0)
    std::printf("\nengine: %llu forks, %llu events, %llu packets, "
                "peak %llu states\n",
                static_cast<unsigned long long>(forks),
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(snap.value("engine.packets")),
                static_cast<unsigned long long>(
                    snap.value("engine.peak_states")));
  bool solverHeader = false;
  for (const auto& [name, point] : snap.points) {
    if (name.rfind("solver.layer.", 0) != 0 ||
        point.kind != obs::MetricKind::kHistogram || point.count == 0)
      continue;
    if (!solverHeader) {
      std::printf("%-44s %10s %10s %10s\n", "SOLVER LAYER", "CALLS",
                  "P50_NS", "P99_NS");
      solverHeader = true;
    }
    std::printf("%-44s %10llu %10llu %10llu\n", name.c_str(),
                static_cast<unsigned long long>(point.count),
                static_cast<unsigned long long>(
                    obs::histogramQuantile(point, 0.5)),
                static_cast<unsigned long long>(
                    obs::histogramQuantile(point, 0.99)));
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: sde_top <socket> [--interval MS] [--once]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string socket = argv[1];
  unsigned intervalMs = 1000;
  bool once = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      intervalMs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (intervalMs == 0) intervalMs = 1;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }

  std::map<std::uint64_t, std::uint64_t> lastEvents;
  double intervalSeconds = 0;
  while (true) {
    try {
      serve::Client client(socket);
      const std::vector<serve::JobStatus> jobs = client.status();
      const serve::MetricsReply metrics = client.metrics();
      const obs::MetricsSnapshot snap =
          obs::decodeMetricsSnapshot(metrics.snapshot);
      if (!once) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
      renderFrame(jobs, snap, lastEvents, intervalSeconds);
      std::fflush(stdout);
      lastEvents.clear();
      for (const serve::JobStatus& job : jobs)
        lastEvents[job.jobId] = job.eventsSeen;
    } catch (const std::exception& e) {
      if (once) {
        std::fprintf(stderr, "sde_top: %s\n", e.what());
        return 1;
      }
      std::printf("sde_top: %s (retrying)\n", e.what());
      std::fflush(stdout);
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
    intervalSeconds = static_cast<double>(intervalMs) / 1000.0;
  }
}
