
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/grid_collect.cpp" "examples/CMakeFiles/grid_collect.dir/grid_collect.cpp.o" "gcc" "examples/CMakeFiles/grid_collect.dir/grid_collect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_rime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
