file(REMOVE_RECURSE
  "CMakeFiles/grid_collect.dir/grid_collect.cpp.o"
  "CMakeFiles/grid_collect.dir/grid_collect.cpp.o.d"
  "grid_collect"
  "grid_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
