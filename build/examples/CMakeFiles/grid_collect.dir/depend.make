# Empty dependencies file for grid_collect.
# This may be replaced when dependencies are built.
