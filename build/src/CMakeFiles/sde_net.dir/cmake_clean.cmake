file(REMOVE_RECURSE
  "CMakeFiles/sde_net.dir/net/failure.cpp.o"
  "CMakeFiles/sde_net.dir/net/failure.cpp.o.d"
  "CMakeFiles/sde_net.dir/net/packet.cpp.o"
  "CMakeFiles/sde_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/sde_net.dir/net/routing.cpp.o"
  "CMakeFiles/sde_net.dir/net/routing.cpp.o.d"
  "CMakeFiles/sde_net.dir/net/topology.cpp.o"
  "CMakeFiles/sde_net.dir/net/topology.cpp.o.d"
  "libsde_net.a"
  "libsde_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
