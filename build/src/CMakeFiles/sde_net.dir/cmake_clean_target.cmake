file(REMOVE_RECURSE
  "libsde_net.a"
)
