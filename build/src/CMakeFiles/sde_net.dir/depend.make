# Empty dependencies file for sde_net.
# This may be replaced when dependencies are built.
