# Empty compiler generated dependencies file for sde_support.
# This may be replaced when dependencies are built.
