file(REMOVE_RECURSE
  "CMakeFiles/sde_support.dir/support/hash.cpp.o"
  "CMakeFiles/sde_support.dir/support/hash.cpp.o.d"
  "CMakeFiles/sde_support.dir/support/logging.cpp.o"
  "CMakeFiles/sde_support.dir/support/logging.cpp.o.d"
  "CMakeFiles/sde_support.dir/support/rng.cpp.o"
  "CMakeFiles/sde_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/sde_support.dir/support/stats.cpp.o"
  "CMakeFiles/sde_support.dir/support/stats.cpp.o.d"
  "libsde_support.a"
  "libsde_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
