file(REMOVE_RECURSE
  "libsde_support.a"
)
