file(REMOVE_RECURSE
  "libsde_solver.a"
)
