
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/cache.cpp" "src/CMakeFiles/sde_solver.dir/solver/cache.cpp.o" "gcc" "src/CMakeFiles/sde_solver.dir/solver/cache.cpp.o.d"
  "/root/repo/src/solver/constraint_set.cpp" "src/CMakeFiles/sde_solver.dir/solver/constraint_set.cpp.o" "gcc" "src/CMakeFiles/sde_solver.dir/solver/constraint_set.cpp.o.d"
  "/root/repo/src/solver/enum_solver.cpp" "src/CMakeFiles/sde_solver.dir/solver/enum_solver.cpp.o" "gcc" "src/CMakeFiles/sde_solver.dir/solver/enum_solver.cpp.o.d"
  "/root/repo/src/solver/independence.cpp" "src/CMakeFiles/sde_solver.dir/solver/independence.cpp.o" "gcc" "src/CMakeFiles/sde_solver.dir/solver/independence.cpp.o.d"
  "/root/repo/src/solver/interval_solver.cpp" "src/CMakeFiles/sde_solver.dir/solver/interval_solver.cpp.o" "gcc" "src/CMakeFiles/sde_solver.dir/solver/interval_solver.cpp.o.d"
  "/root/repo/src/solver/solver.cpp" "src/CMakeFiles/sde_solver.dir/solver/solver.cpp.o" "gcc" "src/CMakeFiles/sde_solver.dir/solver/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
