file(REMOVE_RECURSE
  "CMakeFiles/sde_solver.dir/solver/cache.cpp.o"
  "CMakeFiles/sde_solver.dir/solver/cache.cpp.o.d"
  "CMakeFiles/sde_solver.dir/solver/constraint_set.cpp.o"
  "CMakeFiles/sde_solver.dir/solver/constraint_set.cpp.o.d"
  "CMakeFiles/sde_solver.dir/solver/enum_solver.cpp.o"
  "CMakeFiles/sde_solver.dir/solver/enum_solver.cpp.o.d"
  "CMakeFiles/sde_solver.dir/solver/independence.cpp.o"
  "CMakeFiles/sde_solver.dir/solver/independence.cpp.o.d"
  "CMakeFiles/sde_solver.dir/solver/interval_solver.cpp.o"
  "CMakeFiles/sde_solver.dir/solver/interval_solver.cpp.o.d"
  "CMakeFiles/sde_solver.dir/solver/solver.cpp.o"
  "CMakeFiles/sde_solver.dir/solver/solver.cpp.o.d"
  "libsde_solver.a"
  "libsde_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
