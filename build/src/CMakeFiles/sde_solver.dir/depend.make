# Empty dependencies file for sde_solver.
# This may be replaced when dependencies are built.
