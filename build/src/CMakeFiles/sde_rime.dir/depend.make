# Empty dependencies file for sde_rime.
# This may be replaced when dependencies are built.
