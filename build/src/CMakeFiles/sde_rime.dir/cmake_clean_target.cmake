file(REMOVE_RECURSE
  "libsde_rime.a"
)
