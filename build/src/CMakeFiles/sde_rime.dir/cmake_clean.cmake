file(REMOVE_RECURSE
  "CMakeFiles/sde_rime.dir/rime/apps.cpp.o"
  "CMakeFiles/sde_rime.dir/rime/apps.cpp.o.d"
  "CMakeFiles/sde_rime.dir/rime/header.cpp.o"
  "CMakeFiles/sde_rime.dir/rime/header.cpp.o.d"
  "CMakeFiles/sde_rime.dir/rime/stack.cpp.o"
  "CMakeFiles/sde_rime.dir/rime/stack.cpp.o.d"
  "libsde_rime.a"
  "libsde_rime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_rime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
