# Empty dependencies file for sde_os.
# This may be replaced when dependencies are built.
