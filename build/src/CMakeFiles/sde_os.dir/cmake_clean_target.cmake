file(REMOVE_RECURSE
  "libsde_os.a"
)
