file(REMOVE_RECURSE
  "CMakeFiles/sde_os.dir/os/events.cpp.o"
  "CMakeFiles/sde_os.dir/os/events.cpp.o.d"
  "CMakeFiles/sde_os.dir/os/node.cpp.o"
  "CMakeFiles/sde_os.dir/os/node.cpp.o.d"
  "CMakeFiles/sde_os.dir/os/runtime.cpp.o"
  "CMakeFiles/sde_os.dir/os/runtime.cpp.o.d"
  "libsde_os.a"
  "libsde_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
