# Empty compiler generated dependencies file for sde_expr.
# This may be replaced when dependencies are built.
