file(REMOVE_RECURSE
  "CMakeFiles/sde_expr.dir/expr/context.cpp.o"
  "CMakeFiles/sde_expr.dir/expr/context.cpp.o.d"
  "CMakeFiles/sde_expr.dir/expr/eval.cpp.o"
  "CMakeFiles/sde_expr.dir/expr/eval.cpp.o.d"
  "CMakeFiles/sde_expr.dir/expr/expr.cpp.o"
  "CMakeFiles/sde_expr.dir/expr/expr.cpp.o.d"
  "CMakeFiles/sde_expr.dir/expr/interval.cpp.o"
  "CMakeFiles/sde_expr.dir/expr/interval.cpp.o.d"
  "CMakeFiles/sde_expr.dir/expr/print.cpp.o"
  "CMakeFiles/sde_expr.dir/expr/print.cpp.o.d"
  "libsde_expr.a"
  "libsde_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
