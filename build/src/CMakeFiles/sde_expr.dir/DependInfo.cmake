
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/context.cpp" "src/CMakeFiles/sde_expr.dir/expr/context.cpp.o" "gcc" "src/CMakeFiles/sde_expr.dir/expr/context.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/CMakeFiles/sde_expr.dir/expr/eval.cpp.o" "gcc" "src/CMakeFiles/sde_expr.dir/expr/eval.cpp.o.d"
  "/root/repo/src/expr/expr.cpp" "src/CMakeFiles/sde_expr.dir/expr/expr.cpp.o" "gcc" "src/CMakeFiles/sde_expr.dir/expr/expr.cpp.o.d"
  "/root/repo/src/expr/interval.cpp" "src/CMakeFiles/sde_expr.dir/expr/interval.cpp.o" "gcc" "src/CMakeFiles/sde_expr.dir/expr/interval.cpp.o.d"
  "/root/repo/src/expr/print.cpp" "src/CMakeFiles/sde_expr.dir/expr/print.cpp.o" "gcc" "src/CMakeFiles/sde_expr.dir/expr/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
