file(REMOVE_RECURSE
  "libsde_expr.a"
)
