file(REMOVE_RECURSE
  "CMakeFiles/sde_trace.dir/trace/metrics.cpp.o"
  "CMakeFiles/sde_trace.dir/trace/metrics.cpp.o.d"
  "CMakeFiles/sde_trace.dir/trace/scenario.cpp.o"
  "CMakeFiles/sde_trace.dir/trace/scenario.cpp.o.d"
  "CMakeFiles/sde_trace.dir/trace/table.cpp.o"
  "CMakeFiles/sde_trace.dir/trace/table.cpp.o.d"
  "libsde_trace.a"
  "libsde_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
