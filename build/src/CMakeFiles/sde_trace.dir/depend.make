# Empty dependencies file for sde_trace.
# This may be replaced when dependencies are built.
