file(REMOVE_RECURSE
  "libsde_trace.a"
)
