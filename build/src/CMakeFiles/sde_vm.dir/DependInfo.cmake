
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/builder.cpp" "src/CMakeFiles/sde_vm.dir/vm/builder.cpp.o" "gcc" "src/CMakeFiles/sde_vm.dir/vm/builder.cpp.o.d"
  "/root/repo/src/vm/interp.cpp" "src/CMakeFiles/sde_vm.dir/vm/interp.cpp.o" "gcc" "src/CMakeFiles/sde_vm.dir/vm/interp.cpp.o.d"
  "/root/repo/src/vm/isa.cpp" "src/CMakeFiles/sde_vm.dir/vm/isa.cpp.o" "gcc" "src/CMakeFiles/sde_vm.dir/vm/isa.cpp.o.d"
  "/root/repo/src/vm/memory.cpp" "src/CMakeFiles/sde_vm.dir/vm/memory.cpp.o" "gcc" "src/CMakeFiles/sde_vm.dir/vm/memory.cpp.o.d"
  "/root/repo/src/vm/program.cpp" "src/CMakeFiles/sde_vm.dir/vm/program.cpp.o" "gcc" "src/CMakeFiles/sde_vm.dir/vm/program.cpp.o.d"
  "/root/repo/src/vm/state.cpp" "src/CMakeFiles/sde_vm.dir/vm/state.cpp.o" "gcc" "src/CMakeFiles/sde_vm.dir/vm/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
