file(REMOVE_RECURSE
  "CMakeFiles/sde_vm.dir/vm/builder.cpp.o"
  "CMakeFiles/sde_vm.dir/vm/builder.cpp.o.d"
  "CMakeFiles/sde_vm.dir/vm/interp.cpp.o"
  "CMakeFiles/sde_vm.dir/vm/interp.cpp.o.d"
  "CMakeFiles/sde_vm.dir/vm/isa.cpp.o"
  "CMakeFiles/sde_vm.dir/vm/isa.cpp.o.d"
  "CMakeFiles/sde_vm.dir/vm/memory.cpp.o"
  "CMakeFiles/sde_vm.dir/vm/memory.cpp.o.d"
  "CMakeFiles/sde_vm.dir/vm/program.cpp.o"
  "CMakeFiles/sde_vm.dir/vm/program.cpp.o.d"
  "CMakeFiles/sde_vm.dir/vm/state.cpp.o"
  "CMakeFiles/sde_vm.dir/vm/state.cpp.o.d"
  "libsde_vm.a"
  "libsde_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
