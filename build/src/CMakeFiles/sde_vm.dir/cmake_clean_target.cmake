file(REMOVE_RECURSE
  "libsde_vm.a"
)
