# Empty compiler generated dependencies file for sde_vm.
# This may be replaced when dependencies are built.
