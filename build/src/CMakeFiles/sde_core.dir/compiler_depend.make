# Empty compiler generated dependencies file for sde_core.
# This may be replaced when dependencies are built.
