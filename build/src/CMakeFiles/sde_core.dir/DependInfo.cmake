
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sde/cob.cpp" "src/CMakeFiles/sde_core.dir/sde/cob.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/cob.cpp.o.d"
  "/root/repo/src/sde/cow.cpp" "src/CMakeFiles/sde_core.dir/sde/cow.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/cow.cpp.o.d"
  "/root/repo/src/sde/dstate.cpp" "src/CMakeFiles/sde_core.dir/sde/dstate.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/dstate.cpp.o.d"
  "/root/repo/src/sde/duplicates.cpp" "src/CMakeFiles/sde_core.dir/sde/duplicates.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/duplicates.cpp.o.d"
  "/root/repo/src/sde/engine.cpp" "src/CMakeFiles/sde_core.dir/sde/engine.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/engine.cpp.o.d"
  "/root/repo/src/sde/explode.cpp" "src/CMakeFiles/sde_core.dir/sde/explode.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/explode.cpp.o.d"
  "/root/repo/src/sde/mapper.cpp" "src/CMakeFiles/sde_core.dir/sde/mapper.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/mapper.cpp.o.d"
  "/root/repo/src/sde/partition.cpp" "src/CMakeFiles/sde_core.dir/sde/partition.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/partition.cpp.o.d"
  "/root/repo/src/sde/scheduler.cpp" "src/CMakeFiles/sde_core.dir/sde/scheduler.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/scheduler.cpp.o.d"
  "/root/repo/src/sde/sds.cpp" "src/CMakeFiles/sde_core.dir/sde/sds.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/sds.cpp.o.d"
  "/root/repo/src/sde/testcase.cpp" "src/CMakeFiles/sde_core.dir/sde/testcase.cpp.o" "gcc" "src/CMakeFiles/sde_core.dir/sde/testcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_rime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
