file(REMOVE_RECURSE
  "CMakeFiles/sde_core.dir/sde/cob.cpp.o"
  "CMakeFiles/sde_core.dir/sde/cob.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/cow.cpp.o"
  "CMakeFiles/sde_core.dir/sde/cow.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/dstate.cpp.o"
  "CMakeFiles/sde_core.dir/sde/dstate.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/duplicates.cpp.o"
  "CMakeFiles/sde_core.dir/sde/duplicates.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/engine.cpp.o"
  "CMakeFiles/sde_core.dir/sde/engine.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/explode.cpp.o"
  "CMakeFiles/sde_core.dir/sde/explode.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/mapper.cpp.o"
  "CMakeFiles/sde_core.dir/sde/mapper.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/partition.cpp.o"
  "CMakeFiles/sde_core.dir/sde/partition.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/scheduler.cpp.o"
  "CMakeFiles/sde_core.dir/sde/scheduler.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/sds.cpp.o"
  "CMakeFiles/sde_core.dir/sde/sds.cpp.o.d"
  "CMakeFiles/sde_core.dir/sde/testcase.cpp.o"
  "CMakeFiles/sde_core.dir/sde/testcase.cpp.o.d"
  "libsde_core.a"
  "libsde_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
