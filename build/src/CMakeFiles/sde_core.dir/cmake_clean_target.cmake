file(REMOVE_RECURSE
  "libsde_core.a"
)
