file(REMOVE_RECURSE
  "CMakeFiles/bench_mapping_micro.dir/bench_mapping_micro.cpp.o"
  "CMakeFiles/bench_mapping_micro.dir/bench_mapping_micro.cpp.o.d"
  "bench_mapping_micro"
  "bench_mapping_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapping_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
