# Empty compiler generated dependencies file for bench_mapping_micro.
# This may be replaced when dependencies are built.
