file(REMOVE_RECURSE
  "CMakeFiles/solver_tests.dir/solver/constraint_set_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/constraint_set_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/independence_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/independence_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/solver_property_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/solver_property_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/solver_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/solver_test.cpp.o.d"
  "solver_tests"
  "solver_tests.pdb"
  "solver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
