file(REMOVE_RECURSE
  "CMakeFiles/sde_tests.dir/sde/dstate_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/dstate_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/engine_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/engine_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/equivalence_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/equivalence_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/explode_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/explode_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/fuzz_equivalence_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/fuzz_equivalence_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/mapper_unit_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/mapper_unit_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/partition_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/partition_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/scheduler_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/scheduler_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/sds_cow_duality_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/sds_cow_duality_test.cpp.o.d"
  "CMakeFiles/sde_tests.dir/sde/testcase_test.cpp.o"
  "CMakeFiles/sde_tests.dir/sde/testcase_test.cpp.o.d"
  "sde_tests"
  "sde_tests.pdb"
  "sde_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sde_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
