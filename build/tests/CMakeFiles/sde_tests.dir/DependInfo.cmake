
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sde/dstate_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/dstate_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/dstate_test.cpp.o.d"
  "/root/repo/tests/sde/engine_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/engine_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/engine_test.cpp.o.d"
  "/root/repo/tests/sde/equivalence_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/equivalence_test.cpp.o.d"
  "/root/repo/tests/sde/explode_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/explode_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/explode_test.cpp.o.d"
  "/root/repo/tests/sde/fuzz_equivalence_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/fuzz_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/fuzz_equivalence_test.cpp.o.d"
  "/root/repo/tests/sde/mapper_unit_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/mapper_unit_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/mapper_unit_test.cpp.o.d"
  "/root/repo/tests/sde/partition_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/partition_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/partition_test.cpp.o.d"
  "/root/repo/tests/sde/scheduler_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/scheduler_test.cpp.o.d"
  "/root/repo/tests/sde/sds_cow_duality_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/sds_cow_duality_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/sds_cow_duality_test.cpp.o.d"
  "/root/repo/tests/sde/testcase_test.cpp" "tests/CMakeFiles/sde_tests.dir/sde/testcase_test.cpp.o" "gcc" "tests/CMakeFiles/sde_tests.dir/sde/testcase_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_rime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
