# Empty compiler generated dependencies file for sde_tests.
# This may be replaced when dependencies are built.
