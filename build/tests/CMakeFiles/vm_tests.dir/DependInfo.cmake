
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/builder_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/builder_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/builder_test.cpp.o.d"
  "/root/repo/tests/vm/interp_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/interp_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/interp_test.cpp.o.d"
  "/root/repo/tests/vm/memory_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/memory_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/memory_test.cpp.o.d"
  "/root/repo/tests/vm/state_test.cpp" "tests/CMakeFiles/vm_tests.dir/vm/state_test.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/vm/state_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
