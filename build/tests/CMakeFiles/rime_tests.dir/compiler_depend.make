# Empty compiler generated dependencies file for rime_tests.
# This may be replaced when dependencies are built.
