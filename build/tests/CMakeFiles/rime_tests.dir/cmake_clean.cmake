file(REMOVE_RECURSE
  "CMakeFiles/rime_tests.dir/rime/hello_sensor_test.cpp.o"
  "CMakeFiles/rime_tests.dir/rime/hello_sensor_test.cpp.o.d"
  "CMakeFiles/rime_tests.dir/rime/rime_test.cpp.o"
  "CMakeFiles/rime_tests.dir/rime/rime_test.cpp.o.d"
  "rime_tests"
  "rime_tests.pdb"
  "rime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
