
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expr/determinism_test.cpp" "tests/CMakeFiles/expr_tests.dir/expr/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/expr_tests.dir/expr/determinism_test.cpp.o.d"
  "/root/repo/tests/expr/eval_test.cpp" "tests/CMakeFiles/expr_tests.dir/expr/eval_test.cpp.o" "gcc" "tests/CMakeFiles/expr_tests.dir/expr/eval_test.cpp.o.d"
  "/root/repo/tests/expr/expr_test.cpp" "tests/CMakeFiles/expr_tests.dir/expr/expr_test.cpp.o" "gcc" "tests/CMakeFiles/expr_tests.dir/expr/expr_test.cpp.o.d"
  "/root/repo/tests/expr/interval_test.cpp" "tests/CMakeFiles/expr_tests.dir/expr/interval_test.cpp.o" "gcc" "tests/CMakeFiles/expr_tests.dir/expr/interval_test.cpp.o.d"
  "/root/repo/tests/expr/property_test.cpp" "tests/CMakeFiles/expr_tests.dir/expr/property_test.cpp.o" "gcc" "tests/CMakeFiles/expr_tests.dir/expr/property_test.cpp.o.d"
  "/root/repo/tests/expr/simplify_test.cpp" "tests/CMakeFiles/expr_tests.dir/expr/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/expr_tests.dir/expr/simplify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sde_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sde_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
