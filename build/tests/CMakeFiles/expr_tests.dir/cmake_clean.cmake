file(REMOVE_RECURSE
  "CMakeFiles/expr_tests.dir/expr/determinism_test.cpp.o"
  "CMakeFiles/expr_tests.dir/expr/determinism_test.cpp.o.d"
  "CMakeFiles/expr_tests.dir/expr/eval_test.cpp.o"
  "CMakeFiles/expr_tests.dir/expr/eval_test.cpp.o.d"
  "CMakeFiles/expr_tests.dir/expr/expr_test.cpp.o"
  "CMakeFiles/expr_tests.dir/expr/expr_test.cpp.o.d"
  "CMakeFiles/expr_tests.dir/expr/interval_test.cpp.o"
  "CMakeFiles/expr_tests.dir/expr/interval_test.cpp.o.d"
  "CMakeFiles/expr_tests.dir/expr/property_test.cpp.o"
  "CMakeFiles/expr_tests.dir/expr/property_test.cpp.o.d"
  "CMakeFiles/expr_tests.dir/expr/simplify_test.cpp.o"
  "CMakeFiles/expr_tests.dir/expr/simplify_test.cpp.o.d"
  "expr_tests"
  "expr_tests.pdb"
  "expr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
