# Empty dependencies file for expr_tests.
# This may be replaced when dependencies are built.
