# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/expr_tests[1]_include.cmake")
include("/root/repo/build/tests/vm_tests[1]_include.cmake")
include("/root/repo/build/tests/solver_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/os_tests[1]_include.cmake")
include("/root/repo/build/tests/rime_tests[1]_include.cmake")
include("/root/repo/build/tests/sde_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
