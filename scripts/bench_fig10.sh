#!/usr/bin/env bash
# Regenerates the Figure-10 CSVs committed in bench_results/
# (fig10_{25,49,100}_{COB,COW,SDS}.csv plus the summary/log captures)
# by running bench_fig10 over all three grid sizes. The run is durable:
# checkpoints land in <outdir>/ckpt and a second invocation with
# --resume picks a killed or wall-capped run back up instead of
# starting over.
#
# Usage: scripts/bench_fig10.sh [outdir] [extra bench_fig10 flags...]
#   scripts/bench_fig10.sh                      # refresh bench_results/
#   scripts/bench_fig10.sh /tmp/out --paper     # full-duration runs
#   scripts/bench_fig10.sh bench_results --resume   # continue after a kill
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-bench_results}"
shift || true

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_fig10 >/dev/null

mkdir -p "$outdir"
./build/bench/bench_fig10 \
  --outdir "$outdir" \
  --checkpoint-dir "$outdir/ckpt" \
  "$@" \
  > "$outdir/fig10_summary.txt" \
  2> "$outdir/fig10_log.txt"

# Completed runs delete their checkpoints; an empty ckpt dir means
# nothing was left suspended.
rmdir "$outdir/ckpt" 2>/dev/null || true

echo "fig10 CSVs written to $outdir/:"
ls "$outdir"/fig10_*.csv
