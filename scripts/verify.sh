#!/usr/bin/env bash
# Full verification: tier-1 build + test suite, then a ThreadSanitizer
# build running the concurrency-sensitive tests (thread pool, parallel
# partitioned execution, durable resume) and an AddressSanitizer build
# running the full suite (the snapshot codec hand-rolls binary framing,
# exactly where ASan earns its keep). Run from anywhere; builds live in
# the repo. The fork()+SIGKILL crash and chaos tests skip themselves
# under both sanitizers; the plain-fork fleet tests (equivalence matrix,
# shm cache property battery) run under ASan like everything else.
#
# The fleet smoke stage launches a real 4-process fleet through the
# sde_fleet CLI and checks its fingerprint digest against a
# single-process launch of the same plan — the process count must be
# unobservable in the results (see DESIGN.md §16).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: configure + build ==="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "=== tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j

echo "=== trace smoke: bench --trace-out -> sde_trace validate/export ==="
TRACE_SMOKE=$(mktemp -d)
trap 'rm -rf "$TRACE_SMOKE"' EXIT
./build/bench/bench_table1 --width 4 --height 4 --time 3000 \
  --trace-out "$TRACE_SMOKE" >/dev/null
./build/tools/sde_trace validate "$TRACE_SMOKE"/table1_*.trc
./build/tools/sde_trace summarize "$TRACE_SMOKE/table1_SDS.trc" >/dev/null
./build/tools/sde_trace diff "$TRACE_SMOKE/table1_SDS.trc" \
  "$TRACE_SMOKE/table1_COW.trc" >/dev/null || true  # traces differ by design
./build/tools/sde_trace export-chrome "$TRACE_SMOKE/table1_SDS.trc" \
  "$TRACE_SMOKE/table1_SDS.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
  "$TRACE_SMOKE/table1_SDS.json" 2>/dev/null \
  || echo "(python3 unavailable: skipped JSON well-formedness check)"

echo "=== solver smoke: every pipeline layer sees traffic on the example scenario ==="
./build/tests/sde_tests --gtest_filter='SolverSmokeTest.*'

echo "=== fleet smoke: 4-process launch digest == 1-process launch digest ==="
FLEET_SMOKE=$(mktemp -d)
trap 'rm -rf "$TRACE_SMOKE" "$FLEET_SMOKE"' EXIT
# --testcases drives real traffic through the shared-memory query cache
# (model enumeration is what gets published cross-process).
./build/tools/sde_fleet launch "$FLEET_SMOKE/p4" --processes 4 \
  --nodes '5*5' --time 4000 --vars 3 --testcases | tee "$FLEET_SMOKE/p4.out"
./build/tools/sde_fleet status "$FLEET_SMOKE/p4" >/dev/null
./build/tools/sde_fleet launch "$FLEET_SMOKE/p1" --processes 1 \
  --nodes '5*5' --time 4000 --vars 3 --testcases > "$FLEET_SMOKE/p1.out"
DIGEST_P4=$(grep -o 'digest [0-9a-f]*' "$FLEET_SMOKE/p4.out" | head -1)
DIGEST_P1=$(grep -o 'digest [0-9a-f]*' "$FLEET_SMOKE/p1.out" | head -1)
test -n "$DIGEST_P4" && test "$DIGEST_P4" = "$DIGEST_P1" \
  || { echo "fleet digest mismatch: p4='$DIGEST_P4' p1='$DIGEST_P1'"; exit 1; }
echo "fleet digests agree: $DIGEST_P4"

echo "=== dispatch smoke: switch-dispatch digests == threaded/fused digests ==="
# The VM dispatch strategy (threaded/fused vs the switch interpreter) and
# same-key event batching must be unobservable in the results: re-run the
# fleet smoke plans with SDE_DISPATCH=switch and compare fingerprint
# digests against the default (fused) launches above, at both process
# counts.
SDE_DISPATCH=switch ./build/tools/sde_fleet launch "$FLEET_SMOKE/sw4" \
  --processes 4 --nodes '5*5' --time 4000 --vars 3 --testcases \
  > "$FLEET_SMOKE/sw4.out"
SDE_DISPATCH=switch ./build/tools/sde_fleet launch "$FLEET_SMOKE/sw1" \
  --processes 1 --nodes '5*5' --time 4000 --vars 3 --testcases \
  > "$FLEET_SMOKE/sw1.out"
DIGEST_SW4=$(grep -o 'digest [0-9a-f]*' "$FLEET_SMOKE/sw4.out" | head -1)
DIGEST_SW1=$(grep -o 'digest [0-9a-f]*' "$FLEET_SMOKE/sw1.out" | head -1)
test -n "$DIGEST_SW4" && test "$DIGEST_SW4" = "$DIGEST_P4" \
  || { echo "dispatch digest mismatch (p4): switch='$DIGEST_SW4' fused='$DIGEST_P4'"; exit 1; }
test "$DIGEST_SW1" = "$DIGEST_P1" \
  || { echo "dispatch digest mismatch (p1): switch='$DIGEST_SW1' fused='$DIGEST_P1'"; exit 1; }
echo "dispatch digests agree across modes and process counts: $DIGEST_SW4"

echo "=== merge smoke: merged fleet == unmerged fleet testcase digest, fewer states ==="
# State merging must be invisible in the testcase set (the differential
# battery proves this per-program; this drives it end-to-end through the
# CLI on the paper scenario) while actually reclaiming states.
./build/tools/sde_fleet launch "$FLEET_SMOKE/m-off" --processes 2 \
  --nodes '5*5' --time 4000 --vars 2 --testcases > "$FLEET_SMOKE/m-off.out"
./build/tools/sde_fleet launch "$FLEET_SMOKE/m-on" --processes 2 \
  --nodes '5*5' --time 4000 --vars 2 --testcases --merge --loop-summarize \
  > "$FLEET_SMOKE/m-on.out"
TC_OFF=$(grep -o 'testcase digest [0-9a-f]*' "$FLEET_SMOKE/m-off.out")
TC_ON=$(grep -o 'testcase digest [0-9a-f]*' "$FLEET_SMOKE/m-on.out")
test -n "$TC_OFF" && test "$TC_OFF" = "$TC_ON" \
  || { echo "merge testcase digest mismatch: off='$TC_OFF' on='$TC_ON'"; exit 1; }
STATES_OFF=$(grep -o 'total states *[0-9]*' "$FLEET_SMOKE/m-off.out" | grep -o '[0-9]*$')
STATES_ON=$(grep -o 'total states *[0-9]*' "$FLEET_SMOKE/m-on.out" | grep -o '[0-9]*$')
test "$STATES_ON" -lt "$STATES_OFF" \
  || { echo "merging did not reduce states: on=$STATES_ON off=$STATES_OFF"; exit 1; }
echo "merge smoke: $TC_OFF on both, states $STATES_OFF -> $STATES_ON"

echo "=== serve smoke: submit, SIGKILL the daemon mid-job, restart, digests match direct runs ==="
SERVE_SMOKE=$(mktemp -d)
trap 'rm -rf "$TRACE_SMOKE" "$FLEET_SMOKE" "$SERVE_SMOKE"' EXIT
SERVE_SOCK="$SERVE_SMOKE/root/serve.sock"
# A stale socket file from a killed daemon still exists while the new
# daemon rebinds, so wait with a real status round trip, not -S.
serve_wait() {
  for _ in $(seq 100); do
    ./build/tools/sde_submit status "$SERVE_SOCK" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "sde_serve did not come up"; return 1
}
./build/tools/sde_serve "$SERVE_SMOKE/root" --slots 2 --poll-ms 10 \
  --tenant batch:1 --tenant vip:4 >/dev/null &
SERVE_PID=$!
serve_wait
# Job 1: low priority, big enough to still be running at the kill.
./build/tools/sde_submit submit "$SERVE_SOCK" --tenant batch --priority 0 \
  --processes 2 --vars 2 --nodes '5*5' --time 12000 >/dev/null
# Job 2: higher priority, small.
./build/tools/sde_submit submit "$SERVE_SOCK" --tenant vip --priority 5 \
  --processes 2 --vars 2 --nodes '4*4' --time 3000 >/dev/null
sleep 0.6   # let the fleet get into the thick of job 1
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
sleep 0.5   # runners notice via PDEATHSIG and suspend
./build/tools/sde_serve "$SERVE_SMOKE/root" --slots 2 --poll-ms 10 \
  --tenant batch:1 --tenant vip:4 >/dev/null &
SERVE_PID=$!
serve_wait
./build/tools/sde_submit watch "$SERVE_SOCK" 1 >/dev/null
./build/tools/sde_submit watch "$SERVE_SOCK" 2 >/dev/null
SERVE_D1=$(./build/tools/sde_submit fetch "$SERVE_SOCK" 1 digest.txt)
SERVE_D2=$(./build/tools/sde_submit fetch "$SERVE_SOCK" 2 digest.txt)
./build/tools/sde_submit shutdown "$SERVE_SOCK"
wait "$SERVE_PID"
# Reference digests from direct fleet runs of the identical plans
# (shm cache off to mirror the service runner's configuration; the
# digest is cache-invariant either way).
./build/tools/sde_fleet launch "$SERVE_SMOKE/d1" --processes 2 --vars 2 \
  --nodes '5*5' --time 12000 --no-shm-cache > "$SERVE_SMOKE/d1.out"
./build/tools/sde_fleet launch "$SERVE_SMOKE/d2" --processes 2 --vars 2 \
  --nodes '4*4' --time 3000 --no-shm-cache > "$SERVE_SMOKE/d2.out"
# digest.txt is decimal, sde_fleet prints hex; bash $(( )) wraps both
# mod 2^64 identically, so -eq compares the full u64.
DIRECT_D1=$(( 16#$(grep -o 'digest [0-9a-f]*' "$SERVE_SMOKE/d1.out" | head -1 | cut -d' ' -f2) ))
DIRECT_D2=$(( 16#$(grep -o 'digest [0-9a-f]*' "$SERVE_SMOKE/d2.out" | head -1 | cut -d' ' -f2) ))
test "$(( SERVE_D1 ))" -eq "$DIRECT_D1" && test "$(( SERVE_D2 ))" -eq "$DIRECT_D2" \
  || { echo "serve digest mismatch: job1 $SERVE_D1 vs $DIRECT_D1, job2 $SERVE_D2 vs $DIRECT_D2"; exit 1; }
echo "serve digests survive SIGKILL+restart: job1=$SERVE_D1 job2=$SERVE_D2"

echo "=== metrics smoke: daemon-fetched counters == post-run stats dump, Prometheus parses ==="
METRICS_SMOKE=$(mktemp -d)
trap 'rm -rf "$TRACE_SMOKE" "$FLEET_SMOKE" "$SERVE_SMOKE" "$METRICS_SMOKE"' EXIT
METRICS_SOCK="$METRICS_SMOKE/root/serve.sock"
metrics_wait() {
  for _ in $(seq 100); do
    ./build/tools/sde_submit status "$METRICS_SOCK" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "sde_serve did not come up"; return 1
}
./build/tools/sde_serve "$METRICS_SMOKE/root" --slots 2 --poll-ms 10 >/dev/null &
METRICS_PID=$!
metrics_wait
./build/tools/sde_submit submit "$METRICS_SOCK" --tenant alice --processes 2 \
  --vars 2 --nodes '4*4' --time 3000 >/dev/null
./build/tools/sde_submit watch "$METRICS_SOCK" 1 >/dev/null
# One frame through the live MetricsRequest path (service-wide).
./build/tools/sde_top "$METRICS_SOCK" --once > "$METRICS_SMOKE/top.txt"
grep -q 'slots' "$METRICS_SMOKE/top.txt"
# Per-job Prometheus text: every sample line must parse (name, optional
# {labels}, integer value), and the tenant series must carry its label.
./build/tools/sde_submit metrics "$METRICS_SOCK" 1 > "$METRICS_SMOKE/prom.txt"
test -s "$METRICS_SMOKE/prom.txt"
BAD_PROM=$(grep -vE '^#' "$METRICS_SMOKE/prom.txt" \
  | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9]+$' || true)
test -z "$BAD_PROM" \
  || { echo "unparseable Prometheus lines:"; echo "$BAD_PROM"; exit 1; }
./build/tools/sde_submit metrics "$METRICS_SOCK" > "$METRICS_SMOKE/svc.txt"
grep -q 'sde_serve_jobs_submitted{tenant="alice"} 1' "$METRICS_SMOKE/svc.txt"
# Engine counter totals fetched from the daemon must equal the post-run
# merged StatsRegistry dump of the same job, value for value.
./build/tools/sde_submit fetch "$METRICS_SOCK" 1 stats.txt \
  > "$METRICS_SMOKE/stats.txt"
test "$(grep -c '^engine\.' "$METRICS_SMOKE/stats.txt")" -ge 1
MISMATCH=0
while read -r NAME _ VALUE; do
  case "$NAME" in engine.*) ;; *) continue ;; esac
  PROM_NAME="sde_$(printf '%s' "$NAME" | tr '.' '_')"
  PROM_VALUE=$(awk -v n="$PROM_NAME" '$1 == n {print $2}' \
    "$METRICS_SMOKE/prom.txt")
  test "$PROM_VALUE" = "$VALUE" \
    || { echo "metrics mismatch: $NAME stats=$VALUE prom=$PROM_VALUE"; MISMATCH=1; }
done < "$METRICS_SMOKE/stats.txt"
test "$MISMATCH" -eq 0
./build/tools/sde_submit shutdown "$METRICS_SOCK"
wait "$METRICS_PID"
echo "metrics smoke: live fetch agrees with post-run stats"

echo "=== release: configure + build (CMAKE_BUILD_TYPE=Release) ==="
# Optimised build: the persistent-sharing fork paths are exactly the
# kind of code where -O2 reorders lifetimes; the differential fuzz
# oracle (fixed seeds baked into the test) must agree here too.
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j

echo "=== release: ctest ==="
ctest --test-dir build-release --output-on-failure -j

echo "=== release: fork-sharing differential fuzz oracle ==="
./build-release/tests/fork_sharing_tests

echo "=== tsan: configure + build (SDE_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DSDE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j --target support_tests sde_tests snapshot_tests \
  merge_tests

echo "=== tsan: thread pool + parallel execution + resume tests ==="
./build-tsan/tests/support_tests --gtest_filter='*ThreadPool*'
./build-tsan/tests/sde_tests --gtest_filter='*Parallel*'
./build-tsan/tests/snapshot_tests --gtest_filter='*Resume*:*CrashRecovery*'

echo "=== tsan: merge-on vs merge-off differential battery ==="
./build-tsan/tests/merge_tests

echo "=== asan: configure + build (SDE_SANITIZE=address) ==="
cmake -B build-asan -S . -DSDE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j

echo "=== asan: ctest ==="
ctest --test-dir build-asan --output-on-failure -j

echo "=== asan: merge-on vs merge-off differential battery ==="
# The digest equivalence check from the merge smoke, re-proven per
# random program under ASan (merge mutates live constraint sets and
# reaps states in place — exactly where lifetime bugs would hide).
./build-asan/tests/merge_tests

echo "=== asan: dispatch-mode differential battery ==="
# Threaded dispatch walks a pre-decoded instruction array with computed
# gotos and caches interned constants in mutable decode slots — pointer
# arithmetic ASan must bless on every seed.
./build-asan/tests/dispatch_tests

echo "=== ubsan: configure + build (SDE_SANITIZE=undefined) ==="
# UB surfaces in the expr hashing / shift-heavy solver layers and the
# snapshot codec's byte packing; -fno-sanitize-recover turns any hit
# into a test failure.
cmake -B build-ubsan -S . -DSDE_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-ubsan -j

echo "=== ubsan: ctest ==="
ctest --test-dir build-ubsan --output-on-failure -j

echo "=== ubsan: dispatch-mode differential battery ==="
# The fused handler bodies chain ALU evaluations on u64 immediates
# (shift widths, signed division edge cases); -fno-sanitize-recover
# turns any UB in a superinstruction into a hard failure.
./build-ubsan/tests/dispatch_tests

echo "=== verify: all green ==="
