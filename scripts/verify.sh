#!/usr/bin/env bash
# Full verification: tier-1 build + test suite, then a ThreadSanitizer
# build running the concurrency-sensitive tests (thread pool, parallel
# partitioned execution). Run from anywhere; builds live in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: configure + build ==="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "=== tier-1: ctest ==="
ctest --test-dir build --output-on-failure -j

echo "=== tsan: configure + build (SDE_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DSDE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j --target support_tests sde_tests

echo "=== tsan: thread pool + parallel execution tests ==="
./build-tsan/tests/support_tests --gtest_filter='*ThreadPool*'
./build-tsan/tests/sde_tests --gtest_filter='*Parallel*'

echo "=== verify: all green ==="
